#include "sim/memory.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wire::sim {

double sized_from_history(const std::vector<double>& sorted_peaks,
                          const MemoryConfig& config, double fair_share_mb,
                          double ref_peak_mb) {
  if (config.sizing == MemoryConfig::Sizing::Oracle) {
    return ref_peak_mb * config.safety_factor;
  }
  if (sorted_peaks.empty()) {
    return config.default_mb > 0.0 ? config.default_mb : fair_share_mb;
  }
  double base = 0.0;
  if (config.sizing == MemoryConfig::Sizing::Mean) {
    // Arrival order is lost after sorting, but summation over the sorted
    // history is itself deterministic — both sides fold identically.
    for (double p : sorted_peaks) base += p;
    base /= static_cast<double>(sorted_peaks.size());
  } else {
    // Percentile q over n samples picks index ceil(q*n) - 1 (the smallest
    // sample covering at least a q-fraction of the history).
    const std::size_t n = sorted_peaks.size();
    const double exact = config.percentile * static_cast<double>(n);
    std::size_t idx = static_cast<std::size_t>(std::ceil(exact));
    if (idx > 0) --idx;
    if (idx >= n) idx = n - 1;
    base = sorted_peaks[idx];
  }
  return base * config.safety_factor;
}

double clamp_reservation(double base_mb, const MemoryConfig& config,
                         std::uint32_t oom_attempts) {
  double res = base_mb;
  for (std::uint32_t k = 0; k < oom_attempts; ++k) res *= config.upsize_factor;
  res = std::max(res, config.min_reservation_mb);
  return std::min(res, config.instance_mem_mb);
}

TaskMemorySizer::TaskMemorySizer(const MemoryConfig& config,
                                 std::uint32_t slots_per_instance,
                                 std::size_t stage_count)
    : config_(config), stage_peaks_(stage_count) {
  WIRE_REQUIRE(slots_per_instance > 0, "instance without slots");
  fair_share_mb_ =
      config.instance_mem_mb / static_cast<double>(slots_per_instance);
}

void TaskMemorySizer::observe_peak(dag::StageId stage, double peak_mb) {
  WIRE_CHECK(stage < stage_peaks_.size(), "peak for unknown stage");
  std::vector<double>& peaks = stage_peaks_[stage];
  peaks.insert(std::upper_bound(peaks.begin(), peaks.end(), peak_mb), peak_mb);
}

void TaskMemorySizer::reconfigure(const MemoryConfig& config,
                                  std::uint32_t slots_per_instance) {
  WIRE_REQUIRE(slots_per_instance > 0, "instance without slots");
  config_ = config;
  fair_share_mb_ =
      config.instance_mem_mb / static_cast<double>(slots_per_instance);
}

double TaskMemorySizer::reservation_mb(dag::StageId stage, double ref_peak_mb,
                                       std::uint32_t oom_attempts) const {
  WIRE_CHECK(stage < stage_peaks_.size(), "reservation for unknown stage");
  const double base = sized_from_history(stage_peaks_[stage], config_,
                                         fair_share_mb_, ref_peak_mb);
  return clamp_reservation(base, config_, oom_attempts);
}

}  // namespace wire::sim
