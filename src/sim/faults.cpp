#include "sim/faults.h"

#include <cinttypes>
#include <cstdio>

#include "util/check.h"

namespace wire::sim {
namespace {

/// Fixed stream index separating the fault RNG from the variability stream
/// (which uses the raw run seed). Any constant works; it just has to differ
/// from every other derive_seed stream used with the run seed.
constexpr std::uint64_t kFaultStream = 0xFA171u;

/// Separate stream for true-peak-memory noise, so memory draws never perturb
/// the fault schedule (crash delays, exec faults, ...) and vice versa.
constexpr std::uint64_t kMemoryStream = 0x3E30A7u;

constexpr std::size_t kFaultKindCount =
    static_cast<std::size_t>(FaultKind::OomKill) + 1;

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::ProvisionFailure:
      return "provision_failure";
    case FaultKind::StragglerBoot:
      return "straggler_boot";
    case FaultKind::InstanceCrash:
      return "instance_crash";
    case FaultKind::TaskFault:
      return "task_fault";
    case FaultKind::TaskQuarantine:
      return "task_quarantine";
    case FaultKind::MonitorDropout:
      return "monitor_dropout";
    case FaultKind::OomKill:
      return "oom_kill";
  }
  return "unknown";
}

std::string render_fault_trace(const FaultTrace& trace) {
  std::string out = "time,kind,subject,attempt,detail\n";
  char row[160];
  for (const FaultEvent& e : trace) {
    std::snprintf(row, sizeof(row), "%a,%s,%" PRIu32 ",%" PRIu32 ",%a\n",
                  e.time, fault_kind_name(e.kind), e.subject, e.attempt,
                  e.detail);
    out += row;
  }
  return out;
}

FaultModel::FaultModel(const FaultConfig& config, std::uint64_t run_seed,
                       const MemoryConfig& memory)
    : config_(config),
      memory_(memory),
      enabled_(config.enabled()),
      mem_enabled_(memory.enabled()),
      rng_(util::derive_seed(run_seed, kFaultStream)),
      mem_rng_(util::derive_seed(run_seed, kMemoryStream)),
      counts_(kFaultKindCount, 0) {
  WIRE_REQUIRE(memory.instance_mem_mb >= 0.0 && memory.noise_sigma >= 0.0 &&
                   memory.percentile > 0.0 && memory.percentile <= 1.0 &&
                   memory.safety_factor > 0.0 && memory.default_mb >= 0.0 &&
                   memory.min_reservation_mb >= 0.0 &&
                   memory.upsize_factor >= 1.0,
               "MemoryConfig knobs out of range");
  WIRE_REQUIRE(config.crash_rate_per_hour >= 0.0 &&
                   config.crash_notice_seconds >= 0.0 &&
                   config.provision_failure_prob >= 0.0 &&
                   config.provision_failure_prob <= 1.0 &&
                   config.straggler_prob >= 0.0 &&
                   config.straggler_prob <= 1.0 &&
                   config.straggler_lag_multiplier >= 1.0 &&
                   config.task_failure_prob >= 0.0 &&
                   config.task_failure_prob <= 1.0 &&
                   config.monitor_dropout_prob >= 0.0 &&
                   config.monitor_dropout_prob <= 1.0,
               "FaultConfig rates out of range");
}

BootPlan FaultModel::plan_boot() {
  WIRE_CHECK(enabled_, "fault draw on a disabled FaultModel");
  BootPlan plan;
  // Fixed draw order keeps the stream replayable regardless of which knobs
  // are active.
  plan.failed = rng_.bernoulli(config_.provision_failure_prob);
  if (rng_.bernoulli(config_.straggler_prob)) {
    plan.lag_multiplier = config_.straggler_lag_multiplier;
  }
  return plan;
}

SimTime FaultModel::sample_crash_delay() {
  WIRE_CHECK(enabled_, "fault draw on a disabled FaultModel");
  if (config_.crash_rate_per_hour <= 0.0) return -1.0;
  return rng_.exponential(3600.0 / config_.crash_rate_per_hour);
}

ExecFaultPlan FaultModel::plan_exec() {
  WIRE_CHECK(enabled_, "fault draw on a disabled FaultModel");
  ExecFaultPlan plan;
  plan.fails = rng_.bernoulli(config_.task_failure_prob);
  if (plan.fails) plan.fraction = rng_.uniform(0.0, 1.0);
  return plan;
}

double FaultModel::sample_peak_mem(double ref_peak_mb) {
  WIRE_CHECK(mem_enabled_, "memory draw on a memory-disabled FaultModel");
  if (memory_.noise_sigma <= 0.0) return ref_peak_mb;
  return mem_rng_.lognormal_median(ref_peak_mb, memory_.noise_sigma);
}

bool FaultModel::drop_monitor_tick() {
  WIRE_CHECK(enabled_, "fault draw on a disabled FaultModel");
  return rng_.bernoulli(config_.monitor_dropout_prob);
}

void FaultModel::record(SimTime time, FaultKind kind, std::uint32_t subject,
                        std::uint32_t attempt, double detail) {
  trace_.push_back(FaultEvent{time, kind, subject, attempt, detail});
  ++counts_[static_cast<std::size_t>(kind)];
}

std::uint32_t FaultModel::count(FaultKind kind) const {
  return counts_[static_cast<std::size_t>(kind)];
}

}  // namespace wire::sim
