#include "sim/monitor_store.h"

#include <algorithm>

#include "util/check.h"

namespace wire::sim {

using dag::TaskId;

MonitorStore::MonitorStore(const dag::Workflow& workflow)
    : workflow_(&workflow) {
  const std::size_t n = workflow.task_count();
  snap_.tasks.assign(n, TaskObservation{});
  for (const dag::TaskSpec& t : workflow.tasks()) {
    snap_.tasks[t.id].input_mb = t.input_mb;
  }
  // Bootstrap baseline: the framework master fires the workflow roots at
  // t = 0 in its constructor, before the store can be attached. Journaling
  // that state here (instead of a post-hoc O(tasks) sync) keeps the pending
  // delta empty — the bootstrap is what the first snapshot diffs against.
  for (TaskId root : workflow.roots()) {
    TaskObservation& obs = snap_.tasks[root];
    obs.phase = TaskPhase::Ready;
    obs.ready_since = 0.0;
  }
  snap_.incomplete_tasks = static_cast<std::uint32_t>(n);
  exec_start_.assign(n, -1.0);
  running_pos_.assign(n, 0);
  phase_stamp_.assign(n, 0);
}

void MonitorStore::journal_phase_change(TaskId task) {
  if (in_step_) {
    // Raw append; end_step (or a mid-step refresh) runs the stamp-dedup
    // coalesce once for the whole step.
    step_phase_.push_back(task);
    return;
  }
  if (phase_stamp_[task] != journal_epoch_) {
    phase_stamp_[task] = journal_epoch_;
    pending_.phase_changed.push_back(task);
  }
}

void MonitorStore::flush_step() {
  for (TaskId task : step_phase_) {
    if (phase_stamp_[task] != journal_epoch_) {
      phase_stamp_[task] = journal_epoch_;
      pending_.phase_changed.push_back(task);
    }
  }
  step_phase_.clear();
}

void MonitorStore::begin_step() { in_step_ = true; }

void MonitorStore::end_step() {
  flush_step();
  in_step_ = false;
}

void MonitorStore::running_insert(TaskId task) {
  if (running_pos_[task] != 0) return;
  running_.push_back(task);
  running_pos_[task] = static_cast<std::uint32_t>(running_.size());
}

void MonitorStore::running_erase(TaskId task) {
  const std::uint32_t pos = running_pos_[task];
  if (pos == 0) return;
  const TaskId last = running_.back();
  running_[pos - 1] = last;
  running_pos_[last] = pos;
  running_.pop_back();
  running_pos_[task] = 0;
}

void MonitorStore::on_task_ready(TaskId task, SimTime now,
                                 std::uint32_t attempts) {
  TaskObservation& obs = snap_.tasks[task];
  const double input_mb = obs.input_mb;
  const std::uint32_t failed_attempts = obs.failed_attempts;
  const SimTime last_failed_elapsed = obs.last_failed_elapsed;
  const std::uint32_t oom_attempts = obs.oom_attempts;
  obs = TaskObservation{};
  obs.input_mb = input_mb;
  obs.failed_attempts = failed_attempts;
  obs.last_failed_elapsed = last_failed_elapsed;
  obs.oom_attempts = oom_attempts;
  obs.phase = TaskPhase::Ready;
  obs.ready_since = now;
  obs.attempts = attempts;
  exec_start_[task] = -1.0;
  running_erase(task);
  journal_phase_change(task);
}

void MonitorStore::on_task_dispatched(TaskId task, InstanceId instance,
                                      SimTime now, std::uint32_t attempts,
                                      double mem_reservation_mb) {
  TaskObservation& obs = snap_.tasks[task];
  obs.phase = TaskPhase::Running;
  obs.occupancy_start = now;
  obs.elapsed = 0.0;
  obs.elapsed_exec = 0.0;
  obs.transfer_in_time = -1.0;
  obs.instance = instance;
  obs.attempts = attempts;
  obs.mem_reservation_mb = mem_reservation_mb;
  exec_start_[task] = -1.0;
  running_insert(task);
  journal_phase_change(task);
}

void MonitorStore::on_transfer_in_done(TaskId task, double transfer_in_time,
                                       SimTime now) {
  snap_.tasks[task].transfer_in_time = transfer_in_time;
  exec_start_[task] = now;
  // Still Running: no phase change to journal.
}

void MonitorStore::on_checkpoint_committed(TaskId task,
                                           double durable_exec_seconds) {
  TaskObservation& obs = snap_.tasks[task];
  WIRE_CHECK(obs.phase == TaskPhase::Running,
             "checkpoint commit for a non-running task");
  obs.checkpointed_exec = durable_exec_seconds;
  // Still Running: no phase change to journal.
}

void MonitorStore::on_task_failed(TaskId task, std::uint32_t attempts,
                                  std::uint32_t failed_attempts,
                                  double elapsed) {
  TaskObservation& obs = snap_.tasks[task];
  WIRE_CHECK(obs.phase == TaskPhase::Running, "fault on non-running task");
  const double input_mb = obs.input_mb;
  const std::uint32_t oom_attempts = obs.oom_attempts;
  obs = TaskObservation{};
  obs.input_mb = input_mb;
  obs.attempts = attempts;
  obs.failed_attempts = failed_attempts;
  obs.last_failed_elapsed = elapsed;
  obs.oom_attempts = oom_attempts;
  obs.phase = TaskPhase::Pending;
  exec_start_[task] = -1.0;
  running_erase(task);
  journal_phase_change(task);
  pending_.failed.push_back(task);
}

void MonitorStore::on_task_oom(TaskId task, std::uint32_t attempts,
                               std::uint32_t oom_attempts) {
  TaskObservation& obs = snap_.tasks[task];
  WIRE_CHECK(obs.phase == TaskPhase::Running, "OOM on non-running task");
  const double input_mb = obs.input_mb;
  const std::uint32_t failed_attempts = obs.failed_attempts;
  const SimTime last_failed_elapsed = obs.last_failed_elapsed;
  obs = TaskObservation{};
  obs.input_mb = input_mb;
  obs.attempts = attempts;
  obs.failed_attempts = failed_attempts;
  obs.last_failed_elapsed = last_failed_elapsed;
  obs.oom_attempts = oom_attempts;
  obs.phase = TaskPhase::Pending;
  exec_start_[task] = -1.0;
  running_erase(task);
  journal_phase_change(task);
  pending_.failed.push_back(task);
}

void MonitorStore::on_task_completed(TaskId task, double exec_time,
                                     double transfer_time,
                                     double peak_mem_mb) {
  TaskObservation& obs = snap_.tasks[task];
  WIRE_CHECK(obs.phase != TaskPhase::Completed, "task completed twice");
  const double input_mb = obs.input_mb;
  const std::uint32_t attempts = obs.attempts;
  const std::uint32_t failed_attempts = obs.failed_attempts;
  const SimTime last_failed_elapsed = obs.last_failed_elapsed;
  const std::uint32_t oom_attempts = obs.oom_attempts;
  obs = TaskObservation{};
  obs.input_mb = input_mb;
  obs.attempts = attempts;
  obs.failed_attempts = failed_attempts;
  obs.last_failed_elapsed = last_failed_elapsed;
  obs.oom_attempts = oom_attempts;
  obs.phase = TaskPhase::Completed;
  obs.exec_time = exec_time;
  obs.transfer_time = transfer_time;
  obs.peak_mem_mb = peak_mem_mb;
  exec_start_[task] = -1.0;
  running_erase(task);
  WIRE_CHECK(snap_.incomplete_tasks > 0, "incomplete count underflow");
  --snap_.incomplete_tasks;
  journal_phase_change(task);
  pending_.completed.push_back(task);
}

void MonitorStore::on_instance_added(InstanceId instance) {
  pending_.instances_added.push_back(instance);
}

void MonitorStore::on_instance_removed(InstanceId instance) {
  pending_.instances_removed.push_back(instance);
}

void MonitorStore::refresh_fields(SimTime now, std::uint32_t pool_cap,
                                  const CloudPool& cloud,
                                  const FrameworkMaster& framework,
                                  const CloudConfig& config) {
  snap_.now = now;
  snap_.pool_cap = pool_cap;
  for (TaskId t : running_) {
    TaskObservation& obs = snap_.tasks[t];
    obs.elapsed = now - obs.occupancy_start;
    obs.elapsed_exec = exec_start_[t] >= 0.0 ? now - exec_start_[t] : 0.0;
  }
  snap_.ready_queue = framework.ready_queue_snapshot();
  snap_.instances.clear();
  for (InstanceId id : cloud.live()) {
    const Instance& inst = cloud.instance(id);
    InstanceObservation obs;
    obs.id = id;
    obs.provisioning = inst.state == InstanceState::Provisioning;
    obs.ready_at = inst.ready_at;
    obs.draining = inst.drain_at >= 0.0;
    obs.revoking = cloud.revocation_announced(id, now);
    obs.revoke_at = obs.revoking ? inst.crash_at : -1.0;
    if (inst.state == InstanceState::Ready) {
      obs.time_to_next_charge = cloud.time_to_next_charge(id, now);
      obs.running_tasks = framework.tasks_on(id);
      obs.free_slots = framework.free_slots(id);
    } else {
      obs.time_to_next_charge = config.charging_unit_seconds;
      obs.free_slots = config.slots_per_instance;
    }
    snap_.instances.push_back(std::move(obs));
  }
}

const MonitorSnapshot& MonitorStore::refresh(SimTime now,
                                             std::uint32_t pool_cap,
                                             const CloudPool& cloud,
                                             const FrameworkMaster& framework,
                                             const CloudConfig& config) {
  // Control ticks fire mid-step: coalesce the step buffer before publishing
  // so this delta covers everything up to `now`. Later events of the same
  // step journal against the fresh epoch and land in the next delta.
  if (in_step_) flush_step();
  refresh_fields(now, pool_cap, cloud, framework, config);
  // Publish the journal: swap it into the snapshot (reusing the previous
  // delta's capacity as the next accumulation buffer) and canonicalize the
  // task lists to ascending TaskId — the exact order a full rescan visits
  // them, which keeps delta-driven consumers bit-identical to scan-driven
  // ones.
  std::swap(snap_.delta, pending_);
  pending_.exact = false;
  pending_.completed.clear();
  pending_.phase_changed.clear();
  pending_.instances_added.clear();
  pending_.instances_removed.clear();
  pending_.failed.clear();
  pending_.instances_changed.clear();
  snap_.delta.exact = true;
  std::sort(snap_.delta.completed.begin(), snap_.delta.completed.end());
  std::sort(snap_.delta.phase_changed.begin(), snap_.delta.phase_changed.end());
  // A task may fail more than once within one interval; the delta lists it
  // once (observations carry the count).
  std::sort(snap_.delta.failed.begin(), snap_.delta.failed.end());
  snap_.delta.failed.erase(
      std::unique(snap_.delta.failed.begin(), snap_.delta.failed.end()),
      snap_.delta.failed.end());

  // Lifecycle diff against the previous published snapshot's rows (the
  // rebuild above is already O(live); this adds one sorted merge over the
  // same rows). Peeks skip this entirely, so a dropout interval's changes
  // coalesce into the next exact delta.
  cur_lifecycle_.clear();
  for (const InstanceObservation& obs : snap_.instances) {
    cur_lifecycle_.push_back({obs.id, obs.provisioning, obs.draining,
                              obs.revoking, obs.ready_at, obs.revoke_at});
  }
  std::sort(cur_lifecycle_.begin(), cur_lifecycle_.end(),
            [](const InstanceLifecycle& a, const InstanceLifecycle& b) {
              return a.id < b.id;
            });
  snap_.delta.instances_changed.clear();
  {
    std::size_t i = 0, j = 0;
    while (i < prev_lifecycle_.size() || j < cur_lifecycle_.size()) {
      if (j == cur_lifecycle_.size() ||
          (i < prev_lifecycle_.size() &&
           prev_lifecycle_[i].id < cur_lifecycle_[j].id)) {
        snap_.delta.instances_changed.push_back(prev_lifecycle_[i++].id);
        continue;
      }
      if (i == prev_lifecycle_.size() ||
          cur_lifecycle_[j].id < prev_lifecycle_[i].id) {
        snap_.delta.instances_changed.push_back(cur_lifecycle_[j++].id);
        continue;
      }
      const InstanceLifecycle& p = prev_lifecycle_[i++];
      const InstanceLifecycle& c = cur_lifecycle_[j++];
      if (p.provisioning != c.provisioning || p.draining != c.draining ||
          p.revoking != c.revoking || p.ready_at != c.ready_at ||
          p.revoke_at != c.revoke_at) {
        snap_.delta.instances_changed.push_back(c.id);
      }
    }
  }
  std::swap(prev_lifecycle_, cur_lifecycle_);

  ++journal_epoch_;
  return snap_;
}

const MonitorSnapshot& MonitorStore::peek(SimTime now, std::uint32_t pool_cap,
                                          const CloudPool& cloud,
                                          const FrameworkMaster& framework,
                                          const CloudConfig& config) {
  refresh_fields(now, pool_cap, cloud, framework, config);
  snap_.delta.exact = false;
  snap_.delta.completed.clear();
  snap_.delta.phase_changed.clear();
  snap_.delta.instances_added.clear();
  snap_.delta.instances_removed.clear();
  snap_.delta.failed.clear();
  snap_.delta.instances_changed.clear();
  return snap_;
}

std::size_t MonitorStore::state_bytes() const {
  const auto vec = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  std::size_t bytes = sizeof(*this);
  bytes += vec(snap_.tasks) + vec(snap_.ready_queue);
  bytes += vec(snap_.instances);
  for (const InstanceObservation& inst : snap_.instances) {
    bytes += vec(inst.running_tasks);
  }
  bytes += vec(exec_start_) + vec(running_) + vec(running_pos_) +
           vec(phase_stamp_) + vec(step_phase_);
  bytes += vec(pending_.completed) + vec(pending_.phase_changed) +
           vec(pending_.instances_added) + vec(pending_.instances_removed) +
           vec(pending_.failed) + vec(pending_.instances_changed);
  bytes += vec(snap_.delta.completed) + vec(snap_.delta.phase_changed) +
           vec(snap_.delta.instances_added) +
           vec(snap_.delta.instances_removed) + vec(snap_.delta.failed) +
           vec(snap_.delta.instances_changed);
  bytes += vec(prev_lifecycle_) + vec(cur_lifecycle_);
  return bytes;
}

}  // namespace wire::sim
