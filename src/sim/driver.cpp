#include "sim/driver.h"

#include "sim/engine.h"

namespace wire::sim {

RunResult simulate(const dag::Workflow& workflow, ScalingPolicy& policy,
                   const CloudConfig& config, const RunOptions& options) {
  // The engine validates the configuration; this wrapper just steps the job
  // to completion on a dedicated site (no external multiplexer, no cap).
  JobEngine engine(workflow, policy, config, options);
  engine.start();
  while (!engine.done()) {
    engine.step();
  }
  return engine.result();
}

}  // namespace wire::sim
