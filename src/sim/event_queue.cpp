#include "sim/event_queue.h"

#include <limits>

#include "util/check.h"

namespace wire::sim {

void EventQueue::schedule(SimTime time, EventKind kind, std::uint32_t payload,
                          std::uint32_t aux) {
  WIRE_REQUIRE(time >= last_popped_,
               "cannot schedule an event in the simulated past");
  heap_.push(Event{time, next_seq_++, kind, payload, aux});
  if (is_tracked(kind)) tracked_.push(time);
}

SimTime EventQueue::next_time() const {
  WIRE_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_.top().time;
}

SimTime EventQueue::next_tracked_time() const {
  if (tracked_.empty()) return std::numeric_limits<SimTime>::infinity();
  return tracked_.top();
}

Event EventQueue::pop() {
  WIRE_REQUIRE(!heap_.empty(), "pop on empty queue");
  Event e = heap_.top();
  heap_.pop();
  last_popped_ = e.time;
  if (is_tracked(e.kind)) {
    WIRE_CHECK(!tracked_.empty() && tracked_.top() == e.time,
               "tracked-kind mirror heap out of sync with the event queue");
    tracked_.pop();
  }
  return e;
}

}  // namespace wire::sim
