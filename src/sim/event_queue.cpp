#include "sim/event_queue.h"

#include "util/check.h"

namespace wire::sim {

void EventQueue::schedule(SimTime time, EventKind kind, std::uint32_t payload,
                          std::uint32_t aux) {
  WIRE_REQUIRE(time >= last_popped_,
               "cannot schedule an event in the simulated past");
  heap_.push(Event{time, next_seq_++, kind, payload, aux});
}

SimTime EventQueue::next_time() const {
  WIRE_REQUIRE(!heap_.empty(), "next_time on empty queue");
  return heap_.top().time;
}

Event EventQueue::pop() {
  WIRE_REQUIRE(!heap_.empty(), "pop on empty queue");
  Event e = heap_.top();
  heap_.pop();
  last_popped_ = e.time;
  return e;
}

}  // namespace wire::sim
