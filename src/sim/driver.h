// The run driver: executes one workflow under one scaling policy on the
// simulated cloud and reports the paper's metrics (makespan, charging units,
// utilization, restarts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/workflow.h"
#include "sim/config.h"
#include "sim/faults.h"
#include "sim/framework.h"
#include "sim/scaling_policy.h"

namespace wire::sim {

struct RunOptions {
  /// Root seed of the run's ground-truth variability.
  std::uint64_t seed = 1;
  /// Instances that are already booted at t = 0 (the framework master's
  /// bootstrap pool; static policies set this to their fixed size).
  std::uint32_t initial_instances = 1;
  /// Hard guard against runaway simulations.
  SimTime max_sim_seconds = 90.0 * 24.0 * 3600.0;
  /// Record (time, live, ready) pool samples at every control tick.
  bool record_pool_timeline = false;
};

struct PoolSample {
  SimTime time = 0.0;
  std::uint32_t live_instances = 0;
  std::uint32_t ready_tasks = 0;
  std::uint32_t running_tasks = 0;
};

/// Outcome of one simulated run.
struct RunResult {
  std::string policy_name;
  /// Completion time of the last task (seconds).
  SimTime makespan = 0.0;
  /// Total charging units consumed across all instances — the paper's
  /// "resource cost" metric (Fig. 5).
  double cost_units = 0.0;
  /// Instance-seconds spent in the Ready state (utilization denominator).
  double ready_instance_seconds = 0.0;
  /// Slot-seconds spent on successful task occupancy.
  double busy_slot_seconds = 0.0;
  /// Slot-seconds sunk into attempts killed by instance releases.
  double wasted_slot_seconds = 0.0;
  /// busy / (ready_instance_seconds * slots_per_instance).
  double utilization = 0.0;
  std::uint32_t peak_instances = 0;
  std::uint32_t task_restarts = 0;
  std::uint32_t control_ticks = 0;

  // --- Fault injection (all zero/empty on a reliable cloud) ---
  /// Transient task failures across all tasks (retried attempts that died
  /// mid-execution; distinct from task_restarts, which counts kills by
  /// instance releases/crashes).
  std::uint32_t task_faults = 0;
  /// Ready instances reclaimed by the fault model.
  std::uint32_t instance_crashes = 0;
  /// Provisioning requests that never came up (and were never billed).
  std::uint32_t provision_failures = 0;
  /// Boots whose provisioning lag was stretched by the straggler multiplier.
  std::uint32_t straggler_boots = 0;
  /// Control ticks whose monitoring delta was withheld.
  std::uint32_t monitor_dropouts = 0;

  // --- Scheduled checkpointing (all zero when CheckpointConfig is off,
  // --- except lost_work_seconds, which also tracks the legacy
  // --- checkpoint_fraction salvage model) ---
  /// Checkpoint writes that committed on the shared channel.
  std::uint32_t checkpoints_completed = 0;
  /// In-flight writes purged because their attempt was killed mid-write.
  std::uint32_t checkpoints_lost = 0;
  /// Slot-seconds the running set spent stalled on checkpoint I/O (committed
  /// and lost writes both) — the overhead half of the waste metric.
  double checkpoint_io_slot_seconds = 0.0;
  /// Executed seconds destroyed by kills net of salvage — the lost-work half
  /// of the waste metric (bench_checkpoint minimizes their sum).
  double lost_work_seconds = 0.0;

  // --- Memory dimension (all zero when MemoryConfig is off) ---
  /// Attempts OOM-killed because their true peak exceeded the reservation
  /// (each spawns an upsized retry, or quarantine past max_oom_attempts).
  std::uint32_t oom_kills = 0;
  /// MB-seconds of reserved memory integrated over slot occupancy (every
  /// attempt holds its reservation from dispatch to slot release) — the
  /// over-provisioning wastage numerator.
  double mem_reserved_mb_seconds = 0.0;
  /// MB-seconds a clairvoyant sizer would have booked: true peak times the
  /// occupancy of successful attempts only.
  double mem_used_mb_seconds = 0.0;
  /// Poison tasks: exhausted RetryConfig::max_attempts or
  /// MemoryConfig::max_oom_attempts (or descend from a task that did) and
  /// were excluded from the run, ascending TaskId order. The
  /// run "completes" without them; makespan covers the surviving tasks.
  std::vector<dag::TaskId> quarantined_tasks;
  /// Per-event fault journal, in injection order (replayable byte-for-byte
  /// from the seed; see metrics::write_fault_trace_csv).
  FaultTrace fault_trace;

  /// Final per-task lifecycle records (kickstart archive).
  std::vector<TaskRuntime> task_records;
  /// Present when RunOptions::record_pool_timeline is set.
  std::vector<PoolSample> pool_timeline;
};

/// Runs `workflow` to completion under `policy`. Deterministic in
/// (workflow, policy, config, options.seed). Throws std::runtime_error if the
/// simulation exceeds options.max_sim_seconds (a stuck policy).
RunResult simulate(const dag::Workflow& workflow, ScalingPolicy& policy,
                   const CloudConfig& config, const RunOptions& options = {});

}  // namespace wire::sim
