// Deterministic fault-injection substrate for the ground-truth simulator.
//
// A FaultModel owns its own RNG stream (derived from the run seed, distinct
// from the variability stream) and journals every injected fault into a
// FaultTrace, so identical seeds reproduce identical fault schedules
// byte-for-byte. The engine only consults the model when
// FaultConfig::enabled() — with all rates zero no draw is ever made and no
// fault event is ever scheduled, keeping fault-free runs bit-identical to the
// pre-fault implementation.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/config.h"
#include "sim/monitor.h"
#include "util/rng.h"

namespace wire::sim {

/// Kind of an injected fault (FaultTrace journal entries).
enum class FaultKind : std::uint8_t {
  /// A provisioning request never came up; the instance terminated at its
  /// would-be ready time without being billed. subject = instance id.
  ProvisionFailure,
  /// A boot straggled: provisioning lag was multiplied. subject = instance
  /// id; detail = lag multiplier. Journaled at request time.
  StragglerBoot,
  /// A Ready instance was reclaimed. subject = instance id; detail = advance
  /// notice in seconds (0 = unannounced).
  InstanceCrash,
  /// A task attempt died mid-execution. subject = task id; attempt = the
  /// task's failure count after this fault; detail = occupancy seconds lost.
  TaskFault,
  /// A task exhausted its retries (or descends from one that did) and was
  /// quarantined. subject = task id.
  TaskQuarantine,
  /// A control tick whose monitoring delta was withheld (coalesced into the
  /// next tick).
  MonitorDropout,
  /// A task attempt exceeded its memory reservation and was OOM-killed.
  /// subject = task id; attempt = the task's OOM count after this kill;
  /// detail = the true peak in MB.
  OomKill,
};

const char* fault_kind_name(FaultKind kind);

/// One journaled fault. `subject` is an instance id or task id depending on
/// `kind`; `attempt`/`detail` are kind-specific (see FaultKind docs).
struct FaultEvent {
  SimTime time = 0.0;
  FaultKind kind = FaultKind::InstanceCrash;
  std::uint32_t subject = 0;
  std::uint32_t attempt = 0;
  double detail = 0.0;
};

/// Per-run fault journal, in injection order.
using FaultTrace = std::vector<FaultEvent>;

/// Canonical serialization of a trace (CSV rows, hexfloat times) — used both
/// by metrics::write_fault_trace_csv and by the byte-for-byte replay tests.
std::string render_fault_trace(const FaultTrace& trace);

/// Outcome of the boot-time fault draw for one provisioning request.
struct BootPlan {
  /// The boot will fail at its ready time (instance never becomes Ready).
  bool failed = false;
  /// Provisioning-lag multiplier (1.0 = nominal, > 1 = straggler).
  double lag_multiplier = 1.0;
};

/// Outcome of the per-attempt execution fault draw.
struct ExecFaultPlan {
  bool fails = false;
  /// Fraction of the attempt's execution time that elapses before it dies.
  double fraction = 0.0;
};

/// Seeded fault sampler + journal. All sampling methods draw from the model's
/// private stream in call order, so the engine must call them at
/// deterministic points; none of them may be called unless enabled().
class FaultModel {
 public:
  /// `run_seed` is the RunOptions seed; the model derives a private stream
  /// from it so fault draws never perturb the variability stream. The memory
  /// config gates a second private stream for true-peak noise, so enabling
  /// memory never perturbs the fault schedule (and vice versa).
  FaultModel(const FaultConfig& config, std::uint64_t run_seed,
             const MemoryConfig& memory = {});

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }

  bool memory_enabled() const { return mem_enabled_; }

  /// Draws the true peak memory of one task around its reference peak
  /// (lognormal noise, unit median). Requires memory_enabled(). Called once
  /// per task (the peak is a property of the task, not the attempt).
  double sample_peak_mem(double ref_peak_mb);

  /// Draws the boot-time faults for a new provisioning request.
  BootPlan plan_boot();

  /// Draws the crash delay for an instance that just became Ready. Returns a
  /// strictly positive delay in seconds, or a negative value when this
  /// instance never crashes (crash rate zero).
  SimTime sample_crash_delay();

  /// Draws the transient-failure outcome for one execution attempt.
  ExecFaultPlan plan_exec();

  /// Draws whether this control tick's monitoring delta is withheld.
  bool drop_monitor_tick();

  /// Marks a request as a doomed boot so the engine can recognize it when its
  /// InstanceReady event fires.
  void set_boot_failed(InstanceId id) { failed_boots_.insert(id); }
  bool boot_failed(InstanceId id) const {
    return failed_boots_.count(id) != 0;
  }

  /// Journals one fault and updates the per-kind counters.
  void record(SimTime time, FaultKind kind, std::uint32_t subject,
              std::uint32_t attempt, double detail);

  const FaultTrace& trace() const { return trace_; }
  std::uint32_t count(FaultKind kind) const;

 private:
  FaultConfig config_;
  MemoryConfig memory_;
  bool enabled_ = false;
  bool mem_enabled_ = false;
  util::Rng rng_;
  util::Rng mem_rng_;
  FaultTrace trace_;
  std::unordered_set<InstanceId> failed_boots_;
  std::vector<std::uint32_t> counts_;
};

}  // namespace wire::sim
