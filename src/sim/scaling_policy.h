// The autoscaling-policy interface shared by WIRE and all baselines.
//
// The run driver invokes `plan` once per control interval (the MAPE "Plan"
// step); the returned PoolCommand is the "Execute" step, applied through the
// cloud API: grow requests come up after the provisioning lag, and releases
// happen either immediately or at the instance's next charge boundary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dag/workflow.h"
#include "sim/config.h"
#include "sim/monitor.h"

namespace wire::sim {

/// One instance-release order.
struct Release {
  InstanceId instance = kInvalidInstance;
  /// If true the instance drains exactly when its current charging unit
  /// expires (no recharge); if false it is released immediately (forfeiting
  /// the rest of the paid unit). Running tasks are resubmitted either way.
  bool at_charge_boundary = true;
};

/// The policy's decision for the next interval.
struct PoolCommand {
  /// Number of new instances to request (ready after the provisioning lag).
  std::uint32_t grow = 0;
  /// Instances to release.
  std::vector<Release> releases;
  /// Scheduled drains to cancel: the instance stays in the pool and becomes
  /// dispatchable again immediately (no provisioning lag, no new charge —
  /// its unit keeps running). Ignored for instances that are not draining.
  std::vector<InstanceId> cancel_drains;
  /// The pool size the policy would run with if it were unconstrained —
  /// i.e. before clamping to MonitorSnapshot::pool_cap. Purely advisory: the
  /// multi-tenant arbiter (src/ensemble/) uses it as the tenant's demand
  /// signal for demand-weighted shares. 0 = not reported; the engine then
  /// infers demand from grow/release counts.
  std::uint32_t desired_pool = 0;
  /// Projected peak memory demand (MB) over the policy's lookahead window —
  /// the second, advisory axis of the demand signal (memory-aware
  /// arbitration converts it to instances via the site's per-instance
  /// capacity). 0.0 = not reported; never affects the engine itself.
  double desired_mem_mb = 0.0;
  /// Charging units of budget the policy has left to spend — the third,
  /// advisory axis of the demand signal (budget-weighted arbitration lets
  /// tenants bid with remaining budget; see policies::BudgetPolicy).
  /// -1.0 = not reported (no budget tracking); 0.0 is a meaningful
  /// "exhausted" report. Never affects the engine itself.
  double remaining_budget_units = -1.0;
};

/// Interface implemented by WIRE (src/core) and the baselines (src/policies).
class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;

  /// Human-readable policy name (used in reports: "wire", "pure-reactive",
  /// "reactive-conserving", "full-site", ...).
  virtual std::string name() const = 0;

  /// Called once before the run starts; policies reset per-run state here.
  virtual void on_run_start(const dag::Workflow& workflow,
                            const CloudConfig& config) = 0;

  /// Called at every control interval with the current monitoring snapshot.
  virtual PoolCommand plan(const MonitorSnapshot& snapshot) = 0;
};

}  // namespace wire::sim
