#include "sim/variability.h"

#include <algorithm>
#include <cmath>

namespace wire::sim {

namespace {
double unit_median_lognormal(util::Rng& rng, double sigma) {
  if (sigma <= 0.0) return 1.0;
  return rng.lognormal_median(1.0, sigma);
}
}  // namespace

VariabilityModel::VariabilityModel(const VariabilityConfig& config,
                                   std::uint64_t seed)
    : config_(config), rng_(seed) {
  run_factor_ = unit_median_lognormal(rng_, config_.run_speed_sigma);
}

double VariabilityModel::sample_instance_factor() {
  return unit_median_lognormal(rng_, config_.instance_speed_sigma);
}

double VariabilityModel::sample_exec_seconds(double ref_seconds,
                                             double instance_factor) {
  if (ref_seconds <= 0.0) return 0.0;
  const double interference =
      unit_median_lognormal(rng_, config_.interference_sigma);
  return ref_seconds * run_factor_ * instance_factor * interference;
}

double VariabilityModel::sample_transfer_noise() {
  return unit_median_lognormal(rng_, config_.transfer_noise_sigma);
}

double VariabilityModel::sample_transfer_seconds(double payload_mb) {
  if (payload_mb <= 0.0) return 0.0;
  const double noise =
      unit_median_lognormal(rng_, config_.transfer_noise_sigma);
  const double base = payload_mb / std::max(1e-9, config_.bandwidth_mb_per_s);
  return config_.transfer_latency_seconds + base * noise;
}

}  // namespace wire::sim
