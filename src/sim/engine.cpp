#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace wire::sim {

using dag::TaskId;

JobEngine::JobEngine(const dag::Workflow& workflow, ScalingPolicy& policy,
                     const CloudConfig& config, const RunOptions& options)
    : workflow_(workflow),
      policy_(policy),
      config_(config),
      options_(options),
      cloud_(config),
      framework_(workflow, config.first_fire_priority,
                 config.checkpoint_fraction, config.checkpoint.enabled()),
      store_(workflow),
      variability_(config.variability, options.seed),
      faults_(config.faults, options.seed, config.memory),
      sizer_(config.memory, config.slots_per_instance,
             workflow.stage_count()),
      ckpt_sched_(config.checkpoint) {
  WIRE_REQUIRE(config.lag_seconds > 0.0, "lag must be positive");
  WIRE_REQUIRE(config.charging_unit_seconds > 0.0,
               "charging unit must be positive");
  WIRE_REQUIRE(config.retry.max_attempts > 0, "need at least one attempt");
  WIRE_REQUIRE(config.slots_per_instance > 0, "need at least one slot");
  // The store's constructor journals the same t = 0 bootstrap the master's
  // constructor performs (roots fired as Ready); lifecycle hooks keep it
  // current from here on.
  framework_.set_monitor_store(&store_);
  // Demand-state events (next_demand_event_time): the kinds whose handlers
  // can change live_instances / requested_pool / done or read the external
  // cap. InstanceReady is demand-relevant only under fault injection, where a
  // boot failure terminates the instance on arrival.
  std::uint32_t tracked =
      (1u << static_cast<std::uint32_t>(EventKind::ControlTick)) |
      (1u << static_cast<std::uint32_t>(EventKind::InstanceDrain)) |
      (1u << static_cast<std::uint32_t>(EventKind::InstanceCrash));
  if (faults_.enabled()) {
    tracked |= 1u << static_cast<std::uint32_t>(EventKind::InstanceReady);
  }
  queue_.set_tracked_kinds(tracked);
  // Checkpoint events are deliberately NOT tracked: commits and fires never
  // touch live_instances / requested_pool / done, so a sharded multiplexer
  // may advance them in parallel like any other local event.
  if (config_.checkpoint.enabled()) {
    ckpt_bandwidth_ = config_.checkpoint.channel_bandwidth_mb_per_s;
    ckpt_states_.resize(workflow.task_count());
  }
}

std::uint32_t JobEngine::effective_cap() const {
  const std::uint32_t site =
      config_.max_instances == 0 ? kNoInstanceCap : config_.max_instances;
  return std::min(site, external_cap_);
}

void JobEngine::start() {
  WIRE_REQUIRE(!started_, "engine already started");
  started_ = true;
  policy_.on_run_start(workflow_, config_);
  const std::uint32_t initial =
      std::min(options_.initial_instances, effective_cap());
  for (std::uint32_t i = 0; i < initial; ++i) {
    const InstanceId id =
        cloud_.request_ready(0.0, variability_.sample_instance_factor());
    framework_.register_instance(id, config_.slots_per_instance);
    store_.on_instance_added(id);
    // The bootstrap pool is already booted, so it skips the provisioning
    // faults, but it is just as mortal as any other instance.
    maybe_arm_crash(id, 0.0);
  }
  requested_pool_ = initial;
  store_.begin_step();
  dispatch_all(0.0);
  store_.end_step();
  queue_.schedule(0.0, EventKind::ControlTick, 0);
}

SimTime JobEngine::next_event_time() const {
  WIRE_REQUIRE(started_, "engine not started");
  WIRE_CHECK(!queue_.empty(),
             "simulation deadlock: tasks pending but no events scheduled");
  return queue_.next_time();
}

void JobEngine::step() {
  WIRE_REQUIRE(started_ && !done(), "step on an idle engine");
  WIRE_CHECK(!queue_.empty(),
             "simulation deadlock: tasks pending but no events scheduled");
  const Event e = queue_.pop();
  if (e.time > options_.max_sim_seconds) {
    throw std::runtime_error(
        "simulation exceeded max_sim_seconds — policy appears stuck on '" +
        workflow_.name() + "'");
  }
  // One journal coalesce per engine step: a dispatch storm (an instance boot
  // binding dozens of tasks) appends raw ids and dedups once at end_step
  // instead of stamp-probing per event.
  store_.begin_step();
  switch (e.kind) {
    case EventKind::InstanceReady: handle_instance_ready(e); break;
    case EventKind::TransferInDone: handle_transfer_in_done(e); break;
    case EventKind::ExecDone: handle_exec_done(e); break;
    case EventKind::TransferOutDone: handle_transfer_out_done(e); break;
    case EventKind::ControlTick: handle_control_tick(e); break;
    case EventKind::InstanceDrain: handle_instance_drain(e); break;
    case EventKind::TransferGuard: handle_transfer_guard(e); break;
    case EventKind::TransferStart: handle_transfer_start(e); break;
    case EventKind::InstanceCrash: handle_instance_crash(e); break;
    case EventKind::TaskFaulted: handle_task_faulted(e); break;
    case EventKind::TaskRetry: handle_task_retry(e); break;
    case EventKind::TaskOom: handle_task_oom(e); break;
    case EventKind::TaskCheckpoint: handle_task_checkpoint(e); break;
    case EventKind::CheckpointGuard: handle_checkpoint_guard(e); break;
  }
  store_.end_step();
}

void JobEngine::dispatch_all(SimTime now) {
  if (!config_.memory.enabled()) {
    while (framework_.has_ready()) {
      InstanceId target = kInvalidInstance;
      for (InstanceId id : cloud_.dispatchable(now)) {
        if (framework_.free_slots(id) > 0) {
          target = id;
          break;
        }
      }
      if (target == kInvalidInstance) return;
      const TaskId task = framework_.pop_ready();
      const std::uint32_t slot = framework_.take_free_slot(target);
      framework_.on_dispatch(task, target, slot, now);
      begin_transfer(task, /*inbound=*/true, workflow_.task(task).input_mb,
                     now);
    }
    return;
  }
  // Memory-aware admission: the head ready task needs a free slot AND enough
  // free memory for its sized reservation. FIFO order is preserved strictly —
  // a head task that fits nowhere blocks the queue (no backfilling), which is
  // exactly the projection the lookahead replays.
  while (framework_.has_ready()) {
    const TaskId task = *framework_.peek_ready();
    const dag::TaskSpec& spec = workflow_.task(task);
    const double reservation = sizer_.reservation_mb(
        spec.stage, spec.ref_peak_mem_mb, framework_.runtime(task).oom_attempts);
    InstanceId target = kInvalidInstance;
    for (InstanceId id : cloud_.dispatchable(now)) {
      if (framework_.free_slots(id) > 0 &&
          framework_.mem_used(id) + reservation <=
              config_.memory.instance_mem_mb + 1e-9) {
        target = id;
        break;
      }
    }
    if (target == kInvalidInstance) return;
    framework_.pop_ready();
    const std::uint32_t slot = framework_.take_free_slot(target);
    framework_.on_dispatch(task, target, slot, now, reservation);
    begin_transfer(task, /*inbound=*/true, spec.input_mb, now);
  }
}

double JobEngine::transfer_rate() const {
  if (transfers_.empty()) return 0.0;
  return std::min(config_.variability.bandwidth_mb_per_s,
                  config_.variability.aggregate_bandwidth_mb_per_s /
                      static_cast<double>(transfers_.size()));
}

void JobEngine::advance_transfers(SimTime now) {
  const double rate = transfer_rate();
  const double dt = now - transfers_updated_;
  if (dt > 0.0 && rate > 0.0) {
    for (ActiveTransfer& t : transfers_) {
      t.remaining_mb -= rate * dt;
    }
  }
  transfers_updated_ = now;
}

void JobEngine::arm_transfer_guard(SimTime now) {
  ++transfer_epoch_;
  if (transfers_.empty()) return;
  const double rate = transfer_rate();
  WIRE_CHECK(rate > 0.0, "active transfers with zero rate");
  double min_remaining = transfers_.front().remaining_mb;
  for (const ActiveTransfer& t : transfers_) {
    min_remaining = std::min(min_remaining, t.remaining_mb);
  }
  const SimTime when = now + std::max(0.0, min_remaining) / rate;
  queue_.schedule(when, EventKind::TransferGuard, 0,
                  static_cast<std::uint32_t>(transfer_epoch_));
}

void JobEngine::begin_transfer(TaskId task, bool inbound, double payload_mb,
                               SimTime now) {
  // The per-dispatch scheduling overhead is fixed wall time (the master's
  // negotiation cycle), spent before the input transfer starts; it does not
  // consume fabric bandwidth.
  const double overhead =
      inbound ? config_.dispatch_overhead_seconds : 0.0;
  if (overhead > 0.0) {
    queue_.schedule(now + overhead, EventKind::TransferStart, task,
                    framework_.runtime(task).attempts);
    return;
  }
  start_payload_transfer(task, inbound, payload_mb, now);
}

void JobEngine::handle_transfer_start(const Event& e) {
  const TaskId task = e.payload;
  if (!attempt_is_current(task, e.aux)) return;
  start_payload_transfer(task, /*inbound=*/true,
                         workflow_.task(task).input_mb, e.time);
}

void JobEngine::start_payload_transfer(TaskId task, bool inbound,
                                       double payload_mb, SimTime now) {
  const EventKind done_kind =
      inbound ? EventKind::TransferInDone : EventKind::TransferOutDone;
  const std::uint32_t attempt = framework_.runtime(task).attempts;
  if (!shared_bandwidth() || payload_mb <= 0.0) {
    const double duration = variability_.sample_transfer_seconds(payload_mb);
    queue_.schedule(now + duration, done_kind, task, attempt);
    return;
  }
  advance_transfers(now);
  ActiveTransfer t;
  t.task = task;
  t.attempt = attempt;
  t.inbound = inbound;
  // The setup latency is converted to its link-speed payload equivalent so
  // the whole transfer lives in one bandwidth-sharing regime.
  t.remaining_mb = payload_mb * variability_.sample_transfer_noise() +
                   config_.variability.transfer_latency_seconds *
                       config_.variability.bandwidth_mb_per_s;
  transfers_.push_back(t);
  arm_transfer_guard(now);
}

void JobEngine::finish_transfer_in(TaskId task, SimTime now) {
  framework_.on_transfer_in_done(task, now);
  const double factor =
      cloud_.instance(framework_.runtime(task).instance).speed_factor;
  double exec = variability_.sample_exec_seconds(
      workflow_.task(task).ref_exec_seconds, factor);
  // Checkpointed progress from killed attempts shortens the re-execution.
  exec = std::max(0.0, exec - framework_.runtime(task).salvaged_exec);
  // The attempt's terminal event and the executed seconds until it fires:
  // completion after the full demand, or an injected death partway through.
  EventKind terminal = EventKind::ExecDone;
  double exec_horizon = exec;
  if (faults_.enabled()) {
    const ExecFaultPlan plan = faults_.plan_exec();
    if (plan.fails && exec > 0.0) {
      // The attempt dies partway through execution instead of finishing.
      terminal = EventKind::TaskFaulted;
      exec_horizon = plan.fraction * exec;
    }
  }
  if (terminal == EventKind::ExecDone && config_.memory.enabled()) {
    // Ground truth is drawn lazily, once per task, at first execution start
    // — retries re-run against the SAME peak, so upsizing converges instead
    // of chasing a moving target. (The exec-fault draw above stays first: a
    // transient death preempts the OOM entirely, keeping the fault stream's
    // draw order byte-identical to memory-off runs.)
    if (framework_.runtime(task).true_peak_mem_mb < 0.0) {
      framework_.set_true_peak_mem(
          task, faults_.sample_peak_mem(workflow_.task(task).ref_peak_mem_mb));
    }
    const TaskRuntime& rt = framework_.runtime(task);
    if (rt.mem_reservation_mb >= 0.0 &&
        rt.true_peak_mem_mb > rt.mem_reservation_mb && exec > 0.0) {
      // Footprint ramps linearly over the attempt, so it hits the
      // reservation ceiling at the reservation/peak fraction of exec.
      const double fraction = rt.mem_reservation_mb / rt.true_peak_mem_mb;
      terminal = EventKind::TaskOom;
      exec_horizon = fraction * exec;
    }
  }
  if (config_.checkpoint.enabled()) {
    // Segmented execution: the attempt runs toward its terminal event in
    // segments punctuated by checkpoint writes. A doomed attempt (injected
    // fault/OOM) checkpoints on the same cadence — the system does not know
    // it is doomed — so its committed progress is salvaged at the kill.
    TaskCkptState& st = ckpt_states_[task];
    st.exec_total = exec_horizon;
    st.exec_done = 0.0;
    st.terminal = terminal;
    schedule_exec_segment(task, now);
    return;
  }
  queue_.schedule(now + exec_horizon, terminal, task,
                  framework_.runtime(task).attempts);
}

void JobEngine::finish_transfer_out(TaskId task, SimTime now) {
  if (config_.memory.enabled() &&
      framework_.runtime(task).true_peak_mem_mb >= 0.0) {
    // Completion reveals the true peak (the kickstart record); the sizer's
    // per-stage history drives every later reservation.
    sizer_.observe_peak(workflow_.task(task).stage,
                        framework_.runtime(task).true_peak_mem_mb);
  }
  framework_.on_complete(task, now);
  if (framework_.all_complete()) {
    end_time_ = now;
    return;
  }
  dispatch_all(now);
}

void JobEngine::handle_transfer_guard(const Event& e) {
  if (static_cast<std::uint32_t>(transfer_epoch_) != e.aux) return;
  advance_transfers(e.time);
  std::vector<ActiveTransfer> finished;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < transfers_.size(); ++i) {
    ActiveTransfer& t = transfers_[i];
    const bool stale = !attempt_is_current(t.task, t.attempt);
    if (stale) continue;  // dropped silently (task was resubmitted)
    if (t.remaining_mb <= 1e-9) {
      finished.push_back(t);
      continue;
    }
    transfers_[keep++] = t;
  }
  transfers_.resize(keep);
  arm_transfer_guard(e.time);
  for (const ActiveTransfer& t : finished) {
    if (t.inbound) {
      finish_transfer_in(t.task, e.time);
    } else {
      finish_transfer_out(t.task, e.time);
    }
    if (framework_.all_complete()) return;
  }
}

void JobEngine::purge_stale_transfers(SimTime now) {
  if (!shared_bandwidth() || transfers_.empty()) return;
  advance_transfers(now);
  std::size_t keep = 0;
  for (std::size_t i = 0; i < transfers_.size(); ++i) {
    if (attempt_is_current(transfers_[i].task, transfers_[i].attempt)) {
      transfers_[keep++] = transfers_[i];
    }
  }
  if (keep != transfers_.size()) {
    transfers_.resize(keep);
    arm_transfer_guard(now);
  }
}

double JobEngine::ckpt_size_mb(TaskId task) const {
  const double reservation = framework_.runtime(task).mem_reservation_mb;
  return reservation >= 0.0 ? reservation : config_.checkpoint.default_size_mb;
}

SimTime JobEngine::ckpt_window_defer(SimTime t) const {
  if (ckpt_window_period_ <= 0.0 ||
      ckpt_window_length_ >= ckpt_window_period_) {
    return t;  // no staggering installed, or the window covers the period
  }
  double phase = std::fmod(t - ckpt_window_offset_, ckpt_window_period_);
  if (phase < 0.0) phase += ckpt_window_period_;
  if (phase < ckpt_window_length_) return t;
  return t + (ckpt_window_period_ - phase);
}

void JobEngine::schedule_exec_segment(TaskId task, SimTime now) {
  TaskCkptState& st = ckpt_states_[task];
  const std::uint32_t attempt = framework_.runtime(task).attempts;
  st.attempt = attempt;
  st.segment_start = now;
  const double remaining = st.exec_total - st.exec_done;
  if (checkpoint_active()) {
    // Young/Daly delta: this task's expected write stall at the tenant's
    // current channel share. Co-located running tasks checkpoint on the same
    // cadence and share the channel processor-style, so a write that costs
    // size/bandwidth alone stalls ~running times longer in a synchronized
    // round — without the contention term the interval is tuned for a write
    // cost the task never actually sees and Young/Daly over-checkpoints.
    // Execution continues while a fire waits for an open staggering window,
    // so the deferral extends the segment, not a stall.
    const double contention = static_cast<double>(
        std::max<std::uint32_t>(1u, store_.running_count()));
    const double interval = ckpt_sched_.interval_seconds(
        contention * ckpt_size_mb(task) / ckpt_bandwidth_);
    if (interval < remaining) {
      const SimTime fire = ckpt_window_defer(now + interval);
      if (fire - now < remaining) {
        queue_.schedule(fire, EventKind::TaskCheckpoint, task, attempt);
        return;
      }
    }
  }
  queue_.schedule(now + remaining, st.terminal, task, attempt);
}

void JobEngine::advance_ckpt_writes(SimTime now) {
  const double rate = ckpt_write_rate();
  const double dt = now - ckpt_writes_updated_;
  if (dt > 0.0 && rate > 0.0) {
    for (ActiveCkptWrite& w : ckpt_writes_) {
      w.remaining_mb -= rate * dt;
    }
  }
  ckpt_writes_updated_ = now;
}

void JobEngine::arm_ckpt_guard(SimTime now) {
  ++ckpt_epoch_;
  if (ckpt_writes_.empty()) return;
  const double rate = ckpt_write_rate();
  WIRE_CHECK(rate > 0.0, "active checkpoint writes with zero rate");
  double min_remaining = ckpt_writes_.front().remaining_mb;
  for (const ActiveCkptWrite& w : ckpt_writes_) {
    min_remaining = std::min(min_remaining, w.remaining_mb);
  }
  const SimTime when = now + std::max(0.0, min_remaining) / rate;
  queue_.schedule(when, EventKind::CheckpointGuard, 0,
                  static_cast<std::uint32_t>(ckpt_epoch_));
}

void JobEngine::handle_task_checkpoint(const Event& e) {
  const TaskId task = e.payload;
  if (!attempt_is_current(task, e.aux)) return;
  TaskCkptState& st = ckpt_states_[task];
  WIRE_CHECK(st.attempt == e.aux && st.segment_start >= 0.0,
             "checkpoint fired on a stalled attempt");
  // Close the segment and stall the task for the duration of the write; the
  // slot (and its memory reservation) stays occupied the whole time.
  st.exec_done += e.time - st.segment_start;
  st.segment_start = -1.0;
  advance_ckpt_writes(e.time);
  ActiveCkptWrite w;
  w.task = task;
  w.attempt = e.aux;
  w.remaining_mb = ckpt_size_mb(task);
  w.started = e.time;
  ckpt_writes_.push_back(w);
  arm_ckpt_guard(e.time);
}

void JobEngine::handle_checkpoint_guard(const Event& e) {
  if (static_cast<std::uint32_t>(ckpt_epoch_) != e.aux) return;
  advance_ckpt_writes(e.time);
  std::vector<ActiveCkptWrite> committed;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < ckpt_writes_.size(); ++i) {
    ActiveCkptWrite& w = ckpt_writes_[i];
    if (!attempt_is_current(w.task, w.attempt)) {
      // The attempt died since the last purge point; its image is garbage.
      ++ckpt_lost_;
      ckpt_io_slot_seconds_ += e.time - w.started;
      continue;
    }
    if (w.remaining_mb <= 1e-9) {
      committed.push_back(w);
      continue;
    }
    ckpt_writes_[keep++] = w;
  }
  ckpt_writes_.resize(keep);
  arm_ckpt_guard(e.time);
  for (const ActiveCkptWrite& w : committed) {
    ++ckpt_completed_;
    ckpt_io_slot_seconds_ += e.time - w.started;
    // Everything executed before the write started is now durable; a later
    // kill salvages exactly this much.
    framework_.on_checkpoint_committed(w.task, ckpt_states_[w.task].exec_done);
    schedule_exec_segment(w.task, e.time);
  }
}

void JobEngine::purge_stale_ckpt_writes(SimTime now) {
  if (ckpt_writes_.empty()) return;
  advance_ckpt_writes(now);
  std::size_t keep = 0;
  for (std::size_t i = 0; i < ckpt_writes_.size(); ++i) {
    ActiveCkptWrite& w = ckpt_writes_[i];
    if (attempt_is_current(w.task, w.attempt)) {
      ckpt_writes_[keep++] = w;
      continue;
    }
    ++ckpt_lost_;
    ckpt_io_slot_seconds_ += now - w.started;
  }
  if (keep != ckpt_writes_.size()) {
    ckpt_writes_.resize(keep);
    arm_ckpt_guard(now);
  }
}

void JobEngine::stage_ckpt_kill(TaskId task, SimTime now) {
  if (!config_.checkpoint.enabled()) return;
  const TaskRuntime& rt = framework_.runtime(task);
  const TaskCkptState& st = ckpt_states_[task];
  if (rt.exec_start < 0.0 || st.attempt != rt.attempts) return;
  double progress = st.exec_done;
  if (st.segment_start >= 0.0) progress += now - st.segment_start;
  framework_.stage_kill_progress(task, progress);
}

void JobEngine::ckpt_observe_exposure(SimTime now) {
  // Tick-sampled exposure: the current Ready count applied over the elapsed
  // interval. Piecewise-constant, but unbiased enough that the estimate
  // converges to the configured crash rate on long runs (pinned by test).
  double ready = 0.0;
  for (InstanceId id : cloud_.live()) {
    if (cloud_.instance(id).state == InstanceState::Ready) ready += 1.0;
  }
  ckpt_sched_.hazard().add_exposure_hours(ready * (now - ckpt_exposure_mark_) /
                                          3600.0);
  ckpt_exposure_mark_ = now;
}

void JobEngine::set_checkpoint_channel(double bandwidth_mb_per_s, SimTime now) {
  if (!config_.checkpoint.enabled() ||
      bandwidth_mb_per_s == ckpt_bandwidth_) {
    return;  // no-op installs must not perturb the event stream
  }
  // In-flight writes ran at the old rate until now; the guard must be
  // re-armed because the projected earliest completion changed.
  advance_ckpt_writes(now);
  ckpt_bandwidth_ = bandwidth_mb_per_s;
  if (!ckpt_writes_.empty()) arm_ckpt_guard(now);
}

void JobEngine::set_checkpoint_window(SimTime offset, double length,
                                      double period) {
  ckpt_window_offset_ = offset;
  ckpt_window_length_ = length;
  ckpt_window_period_ = period;
}

void JobEngine::handle_instance_ready(const Event& e) {
  const InstanceId id = e.payload;
  if (cloud_.instance(id).state == InstanceState::Terminated) return;
  if (faults_.enabled() && faults_.boot_failed(id)) {
    // Provisioning failure: the boot times out instead of coming up. The
    // instance was never Ready, so it is never billed.
    cloud_.terminate(id, e.time);
    store_.on_instance_removed(id);
    faults_.record(e.time, FaultKind::ProvisionFailure, id, 0, 0.0);
    return;
  }
  cloud_.mark_ready(id, e.time);
  framework_.register_instance(id, config_.slots_per_instance);
  maybe_arm_crash(id, e.time);
  dispatch_all(e.time);
}

void JobEngine::maybe_arm_crash(InstanceId id, SimTime now) {
  if (!faults_.enabled()) return;
  const SimTime delay = faults_.sample_crash_delay();
  if (delay < 0.0) return;
  const SimTime crash_at = now + delay;
  const SimTime notice_at =
      std::max(now, crash_at - config_.faults.crash_notice_seconds);
  cloud_.mark_doomed(id, crash_at, notice_at);
  queue_.schedule(crash_at, EventKind::InstanceCrash, id);
}

void JobEngine::handle_instance_crash(const Event& e) {
  const InstanceId id = e.payload;
  if (cloud_.instance(id).state != InstanceState::Ready) {
    return;  // released (drained/terminated) before the crash landed
  }
  // Terminate-style lifecycle: in-flight tasks re-fire through the restart
  // path, billing stops at the crash, and the store journals the same events
  // a policy-ordered release would — MonitorDelta stays exact.
  if (config_.checkpoint.enabled()) {
    for (TaskId t : framework_.tasks_on(id)) stage_ckpt_kill(t, e.time);
    ckpt_sched_.hazard().record_crash();
  }
  framework_.resubmit_tasks_on(id, e.time);
  cloud_.terminate(id, e.time);
  store_.on_instance_removed(id);
  faults_.record(e.time, FaultKind::InstanceCrash, id, 0,
                 config_.faults.crash_notice_seconds);
  purge_stale_transfers(e.time);
  purge_stale_ckpt_writes(e.time);
  dispatch_all(e.time);
}

void JobEngine::handle_task_faulted(const Event& e) {
  const TaskId task = e.payload;
  if (!attempt_is_current(task, e.aux)) return;
  stage_ckpt_kill(task, e.time);
  const std::uint32_t failures = framework_.on_task_failed(task, e.time);
  faults_.record(e.time, FaultKind::TaskFault, task, failures,
                 framework_.runtime(task).last_failed_elapsed);
  purge_stale_ckpt_writes(e.time);
  if (failures >= config_.retry.max_attempts) {
    for (TaskId poisoned : framework_.quarantine(task)) {
      faults_.record(e.time, FaultKind::TaskQuarantine, poisoned, 0, 0.0);
    }
    if (framework_.all_complete()) {
      end_time_ = e.time;
      return;
    }
  } else {
    const double backoff =
        config_.retry.backoff_base_seconds *
        std::pow(config_.retry.backoff_factor,
                 static_cast<double>(failures - 1));
    queue_.schedule(e.time + backoff, EventKind::TaskRetry, task,
                    failures + framework_.runtime(task).oom_attempts);
  }
  dispatch_all(e.time);  // the fault freed a slot
}

void JobEngine::handle_task_oom(const Event& e) {
  const TaskId task = e.payload;
  if (!attempt_is_current(task, e.aux)) return;
  const double true_peak = framework_.runtime(task).true_peak_mem_mb;
  stage_ckpt_kill(task, e.time);
  const std::uint32_t ooms = framework_.on_task_oom(task, e.time);
  faults_.record(e.time, FaultKind::OomKill, task, ooms, true_peak);
  purge_stale_ckpt_writes(e.time);
  if (ooms >= config_.memory.max_oom_attempts) {
    for (TaskId poisoned : framework_.quarantine(task)) {
      faults_.record(e.time, FaultKind::TaskQuarantine, poisoned, 0, 0.0);
    }
    if (framework_.all_complete()) {
      end_time_ = e.time;
      return;
    }
  } else {
    // Same backoff ladder as transient faults; the retry re-dispatches with
    // an upsized reservation (clamp_reservation grows it per OOM attempt).
    const double backoff =
        config_.retry.backoff_base_seconds *
        std::pow(config_.retry.backoff_factor, static_cast<double>(ooms - 1));
    queue_.schedule(e.time + backoff, EventKind::TaskRetry, task,
                    framework_.runtime(task).failed_attempts + ooms);
  }
  dispatch_all(e.time);  // the kill freed a slot (and its reservation)
}

void JobEngine::handle_task_retry(const Event& e) {
  const TaskId task = e.payload;
  const TaskRuntime& rt = framework_.runtime(task);
  // Stale if the task moved on (quarantined by an ancestor's exhaustion, or
  // failed again through some other path since this retry was scheduled).
  // The guard counts transient failures and OOM kills together, so either
  // kind of later death invalidates an in-flight retry.
  if (rt.phase != TaskPhase::Pending || rt.quarantined ||
      rt.failed_attempts + rt.oom_attempts != e.aux) {
    return;
  }
  framework_.requeue_failed(task, e.time);
  dispatch_all(e.time);
}

void JobEngine::handle_transfer_in_done(const Event& e) {
  const TaskId task = e.payload;
  if (!attempt_is_current(task, e.aux)) return;
  finish_transfer_in(task, e.time);
}

void JobEngine::handle_exec_done(const Event& e) {
  const TaskId task = e.payload;
  if (!attempt_is_current(task, e.aux)) return;
  if (config_.checkpoint.enabled()) {
    TaskCkptState& st = ckpt_states_[task];
    WIRE_CHECK(st.attempt == e.aux && st.segment_start >= 0.0,
               "exec finished on a stalled attempt");
    st.exec_done = st.exec_total;
    st.segment_start = -1.0;
    // Report pure executed seconds: the attempt's wall span includes
    // checkpoint stalls, which must not pollute exec-time observations.
    framework_.on_exec_done(task, e.time, st.exec_total);
  } else {
    framework_.on_exec_done(task, e.time);
  }
  begin_transfer(task, /*inbound=*/false, workflow_.task(task).output_mb,
                 e.time);
}

void JobEngine::handle_transfer_out_done(const Event& e) {
  const TaskId task = e.payload;
  if (!attempt_is_current(task, e.aux)) return;
  finish_transfer_out(task, e.time);
}

MonitorSnapshot JobEngine::rebuild_snapshot(SimTime now) const {
  MonitorSnapshot snap;
  snap.now = now;
  snap.pool_cap = effective_cap();
  framework_.fill_observations(now, snap.tasks);
  snap.ready_queue = framework_.ready_queue_snapshot();
  snap.incomplete_tasks = static_cast<std::uint32_t>(
      workflow_.task_count() - framework_.completed_count());
  for (InstanceId id : cloud_.live()) {
    const Instance& inst = cloud_.instance(id);
    InstanceObservation obs;
    obs.id = id;
    obs.provisioning = inst.state == InstanceState::Provisioning;
    obs.ready_at = inst.ready_at;
    obs.draining = inst.drain_at >= 0.0;
    obs.revoking = cloud_.revocation_announced(id, now);
    obs.revoke_at = obs.revoking ? inst.crash_at : -1.0;
    if (inst.state == InstanceState::Ready) {
      obs.time_to_next_charge = cloud_.time_to_next_charge(id, now);
      obs.running_tasks = framework_.tasks_on(id);
      obs.free_slots = framework_.free_slots(id);
    } else {
      obs.time_to_next_charge = config_.charging_unit_seconds;
      obs.free_slots = config_.slots_per_instance;
    }
    snap.instances.push_back(std::move(obs));
  }
  return snap;
}

const MonitorSnapshot& JobEngine::peek_monitor(SimTime now) {
  return store_.peek(now, effective_cap(), cloud_, framework_, config_);
}

void JobEngine::apply_command(const PoolCommand& cmd, SimTime now) {
  // Drain reclaims first: they add capacity instantly and may make grow
  // requests unnecessary (the policy accounts for that when it issues both).
  bool reclaimed = false;
  for (InstanceId id : cmd.cancel_drains) {
    if (id >= cloud_.instance_count()) continue;
    const Instance& inst = cloud_.instance(id);
    if (inst.state != InstanceState::Ready || inst.drain_at < 0.0) continue;
    cloud_.cancel_drain(id);
    reclaimed = true;
  }
  if (reclaimed) dispatch_all(now);

  // Grow, clipped to the binding ceiling (site capacity and, in multi-tenant
  // runs, the external arbiter share).
  std::uint32_t grow = cmd.grow;
  const std::uint32_t cap = effective_cap();
  const std::uint32_t live = cloud_.live_count();
  grow = live >= cap ? 0 : std::min(grow, cap - live);
  for (std::uint32_t i = 0; i < grow; ++i) {
    SimTime lag_override = -1.0;
    bool boot_fails = false;
    if (faults_.enabled()) {
      const BootPlan plan = faults_.plan_boot();
      boot_fails = plan.failed;
      if (plan.lag_multiplier != 1.0) {
        lag_override = config_.lag_seconds * plan.lag_multiplier;
      }
    }
    const InstanceId id = cloud_.request(
        now, variability_.sample_instance_factor(), lag_override);
    if (boot_fails) faults_.set_boot_failed(id);
    if (lag_override >= 0.0) {
      faults_.record(now, FaultKind::StragglerBoot, id, 0,
                     config_.faults.straggler_lag_multiplier);
    }
    store_.on_instance_added(id);
    queue_.schedule(cloud_.instance(id).ready_at, EventKind::InstanceReady,
                    id);
  }

  // Releases.
  bool need_dispatch = false;
  for (const Release& rel : cmd.releases) {
    if (rel.instance >= cloud_.instance_count()) continue;
    const Instance& inst = cloud_.instance(rel.instance);
    if (inst.state == InstanceState::Terminated) continue;
    if (inst.state == InstanceState::Provisioning) {
      // Cancel mid-boot: never billed, never usable.
      cloud_.terminate(rel.instance, now);
      store_.on_instance_removed(rel.instance);
      continue;
    }
    if (rel.at_charge_boundary) {
      if (inst.drain_at >= 0.0) continue;  // already draining
      const SimTime when = cloud_.schedule_drain(rel.instance, now);
      queue_.schedule(when, EventKind::InstanceDrain, rel.instance);
    } else {
      if (config_.checkpoint.enabled()) {
        for (TaskId t : framework_.tasks_on(rel.instance)) {
          stage_ckpt_kill(t, now);
        }
      }
      framework_.resubmit_tasks_on(rel.instance, now);
      cloud_.terminate(rel.instance, now);
      store_.on_instance_removed(rel.instance);
      need_dispatch = true;
    }
  }
  if (need_dispatch) {
    purge_stale_transfers(now);
    purge_stale_ckpt_writes(now);
    dispatch_all(now);
  }
}

void JobEngine::handle_control_tick(const Event& e) {
  if (framework_.all_complete()) return;
  ++control_ticks_;
  // Monitoring dropout: this tick's delta is withheld — the policy sees the
  // refreshed fields but a non-exact, empty delta (consumers fall back to
  // their full-scan paths), and the pending journal coalesces into the next
  // successful refresh.
  const bool dropout = faults_.enabled() && faults_.drop_monitor_tick();
  if (dropout) {
    faults_.record(e.time, FaultKind::MonitorDropout, 0, 0, 0.0);
  }
  if (config_.checkpoint.enabled()) {
    ckpt_observe_exposure(e.time);
    // Latch the checkpoint demand signal like requested_pool_: the bytes the
    // current running set would write, read by a site arbiter at rebalance.
    double demand = 0.0;
    for (InstanceId id : cloud_.live()) {
      if (cloud_.instance(id).state != InstanceState::Ready) continue;
      for (TaskId t : framework_.tasks_on(id)) demand += ckpt_size_mb(t);
    }
    ckpt_demand_mb_ = demand;
  }
  // O(running + live + ready) store refresh instead of an O(total tasks)
  // rebuild; the published delta lets consumers skip their own rescans too.
  const MonitorSnapshot& snap =
      dropout
          ? store_.peek(e.time, effective_cap(), cloud_, framework_, config_)
          : store_.refresh(e.time, effective_cap(), cloud_, framework_,
                           config_);
  if (options_.record_pool_timeline) {
    PoolSample sample;
    sample.time = e.time;
    sample.live_instances = cloud_.live_count();
    sample.ready_tasks = static_cast<std::uint32_t>(snap.ready_queue.size());
    sample.running_tasks = store_.running_count();
    timeline_.push_back(sample);
  }
  const PoolCommand cmd = policy_.plan(snap);
  // The demand signal: the policy's own desired size when reported, else the
  // pool its command steers toward (non-draining live + grows - releases),
  // both pre-clamping.
  if (cmd.desired_pool > 0) {
    requested_pool_ = cmd.desired_pool;
  } else {
    std::uint32_t m = 0;
    for (const InstanceObservation& inst : snap.instances) {
      if (!inst.draining) ++m;
    }
    const std::uint32_t releases =
        static_cast<std::uint32_t>(cmd.releases.size());
    requested_pool_ = m + cmd.grow - std::min(releases, m + cmd.grow);
  }
  requested_mem_mb_ = cmd.desired_mem_mb;
  remaining_budget_units_ = cmd.remaining_budget_units;
  apply_command(cmd, e.time);
  queue_.schedule(e.time + config_.lag_seconds, EventKind::ControlTick, 0);
}

void JobEngine::handle_instance_drain(const Event& e) {
  const InstanceId id = e.payload;
  const Instance& inst = cloud_.instance(id);
  if (inst.state != InstanceState::Ready) return;
  if (inst.drain_at < 0.0 || std::abs(inst.drain_at - e.time) > 1e-6) {
    return;  // drain was cancelled or rescheduled
  }
  if (config_.checkpoint.enabled()) {
    for (TaskId t : framework_.tasks_on(id)) stage_ckpt_kill(t, e.time);
  }
  framework_.resubmit_tasks_on(id, e.time);
  cloud_.terminate(id, e.time);
  store_.on_instance_removed(id);
  purge_stale_transfers(e.time);
  purge_stale_ckpt_writes(e.time);
  dispatch_all(e.time);
}

RunResult JobEngine::result() {
  WIRE_REQUIRE(done(), "result before completion");
  WIRE_REQUIRE(!finalized_, "result already taken");
  finalized_ = true;
  WIRE_CHECK(end_time_ >= 0.0, "run finished without an end time");

  // Stragglers from attempts that died right at the end count as lost.
  purge_stale_ckpt_writes(end_time_);

  // Release whatever is still allocated; paid units up to now are kept.
  for (InstanceId id : cloud_.live()) {
    cloud_.terminate(id, end_time_);
  }

  RunResult result;
  result.policy_name = policy_.name();
  result.makespan = end_time_;
  result.cost_units = cloud_.total_charged_units(end_time_);
  result.ready_instance_seconds = cloud_.total_ready_seconds(end_time_);
  result.busy_slot_seconds = framework_.busy_slot_seconds();
  result.wasted_slot_seconds = framework_.wasted_slot_seconds();
  const double capacity =
      result.ready_instance_seconds * config_.slots_per_instance;
  result.utilization = capacity > 0.0
                           ? (result.busy_slot_seconds +
                              result.wasted_slot_seconds) / capacity
                           : 0.0;
  result.peak_instances = cloud_.peak_live();
  result.task_restarts = framework_.total_restarts();
  result.control_ticks = control_ticks_;
  result.task_faults = framework_.total_task_faults();
  result.instance_crashes = faults_.count(FaultKind::InstanceCrash);
  result.provision_failures = faults_.count(FaultKind::ProvisionFailure);
  result.straggler_boots = faults_.count(FaultKind::StragglerBoot);
  result.monitor_dropouts = faults_.count(FaultKind::MonitorDropout);
  result.checkpoints_completed = ckpt_completed_;
  result.checkpoints_lost = ckpt_lost_;
  result.checkpoint_io_slot_seconds = ckpt_io_slot_seconds_;
  result.lost_work_seconds = framework_.lost_work_seconds();
  result.oom_kills = framework_.total_oom_kills();
  result.mem_reserved_mb_seconds = framework_.mem_reserved_mb_seconds();
  result.mem_used_mb_seconds = framework_.mem_used_mb_seconds();
  result.fault_trace = faults_.trace();
  result.task_records.reserve(workflow_.task_count());
  for (TaskId t = 0; t < workflow_.task_count(); ++t) {
    result.task_records.push_back(framework_.runtime(t));
    if (framework_.runtime(t).quarantined) {
      result.quarantined_tasks.push_back(t);
    }
  }
  result.pool_timeline = std::move(timeline_);
  return result;
}

}  // namespace wire::sim
