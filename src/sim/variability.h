// Ground-truth performance model (hidden from the controller).
//
// Implements the variability the paper motivates in §II: intra-stage load
// skew is baked into the workload's per-task reference times; this model adds
// the *across-run* effects — per-instance speed differences and transient
// interference on executions and transfers. All draws come from a seeded RNG
// owned by the run, so a run is reproducible and two runs with different
// seeds genuinely differ (what defeats history-based predictors).
#pragma once

#include "sim/config.h"
#include "util/rng.h"

namespace wire::sim {

class VariabilityModel {
 public:
  /// Draws the run-level speed factor immediately (first use of the stream),
  /// so a run's environment is fixed at its start.
  VariabilityModel(const VariabilityConfig& config, std::uint64_t seed);

  /// This run's global speed factor (1.0 when run_speed_sigma == 0).
  double run_factor() const { return run_factor_; }

  /// Speed factor for a newly booted instance (1.0 is nominal; < 1 is faster
  /// in the sense that actual time = reference * factor).
  double sample_instance_factor();

  /// Actual execution duration for a task with reference time `ref_seconds`
  /// on an instance with the given speed factor.
  double sample_exec_seconds(double ref_seconds, double instance_factor);

  /// Actual transfer duration for `payload_mb` of data at full link speed
  /// (no contention). Zero payload costs zero time (in-memory handoff).
  double sample_transfer_seconds(double payload_mb);

  /// Raw multiplicative transfer noise factor (unit-median lognormal) for
  /// the processor-sharing transfer model, where durations emerge from
  /// bandwidth sharing rather than a single draw.
  double sample_transfer_noise();

 private:
  VariabilityConfig config_;
  util::Rng rng_;
  double run_factor_ = 1.0;
};

}  // namespace wire::sim
