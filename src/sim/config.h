// Configuration of the simulated IaaS cloud (the ExoGENI substitute).
//
// §IV-B of the paper: worker instances are XOXLarge ExoGENI VMs hosting up to
// four concurrent tasks; a site provides at most 12 instances; instantiation
// lag is ~3 minutes (also used as the MAPE interval); charging units are
// 1/15/30/60 minutes. These are the defaults below.
#pragma once

#include <cstdint>

namespace wire::sim {

/// Simulation time in seconds.
using SimTime = double;

/// Ground-truth variability knobs (Observations 1 & 2 of the paper): tasks in
/// a stage are skewed by the workload generator; on top of that, instances
/// differ in speed and runs suffer transient interference. The controller
/// never sees these parameters.
struct VariabilityConfig {
  /// Lognormal sigma of the per-instance speed factor (drawn at boot) —
  /// "different types of VM instances have different per-core memory
  /// bandwidths" / heterogeneous hardware behind identical flavors.
  double instance_speed_sigma = 0.04;
  /// Lognormal sigma of per-execution interference noise — co-located load.
  double interference_sigma = 0.04;
  /// Lognormal sigma of a per-RUN global speed factor (drawn once per run,
  /// multiplying every execution) — the §II-B across-run variability:
  /// different datasets, resource types and co-located load make the same
  /// workflow run at different speeds on different days. Online prediction
  /// adapts to it automatically; history-based prediction does not.
  double run_speed_sigma = 0.0;
  /// Lognormal sigma of data-transfer time noise — transient network
  /// contention (the paper models transfers as memoryless and estimates them
  /// with a recent median).
  double transfer_noise_sigma = 0.30;
  /// Fixed per-transfer latency, seconds (connection setup); applied only to
  /// transfers with non-zero payload.
  double transfer_latency_seconds = 0.5;
  /// Sustained per-transfer (per-link) bandwidth, MB/s.
  double bandwidth_mb_per_s = 100.0;
  /// Aggregate bandwidth of the shared storage/network fabric, MB/s.
  /// Concurrent transfers share it processor-style (each proceeds at
  /// min(per-link, aggregate / active transfers)) — the §II-B/§III-B1
  /// observation that transfer performance varies with the number of
  /// instances. 0 = unlimited (no contention; every transfer runs at link
  /// speed for a fixed duration).
  double aggregate_bandwidth_mb_per_s = 0.0;
};

/// Fault-injection knobs (all zero by default = the perfectly reliable cloud
/// the seed implementation modeled). When every rate is zero the engine never
/// constructs fault events and never draws from the fault RNG stream, so
/// fault-free runs stay byte-identical to the pre-fault implementation. The
/// controller never sees these parameters — only their consequences
/// (revocation notices, lifecycle events, failed attempts).
struct FaultConfig {
  /// Instance crash/revocation rate per instance-hour of Ready time. Each
  /// instance draws an exponential lifetime when it becomes Ready; at that
  /// point it is reclaimed exactly like a terminate (billing stops, in-flight
  /// tasks re-fire through the restart path).
  double crash_rate_per_hour = 0.0;
  /// Advance revocation notice, seconds (spot-style "you will lose this
  /// instance at T"). From `crash_at - notice` onward the instance reports
  /// `revoking = true` in its MonitorSnapshot row; policies must not count it
  /// as stable capacity. 0 = crashes arrive unannounced.
  double crash_notice_seconds = 0.0;
  /// Probability that a provisioning request never comes up: the boot fails
  /// at its ready time and the instance terminates without ever being Ready
  /// (and is therefore never billed).
  double provision_failure_prob = 0.0;
  /// Probability that a boot straggles: its provisioning lag is multiplied by
  /// `straggler_lag_multiplier`.
  double straggler_prob = 0.0;
  double straggler_lag_multiplier = 3.0;
  /// Per-attempt transient task failure probability. A failing attempt dies
  /// partway through execution (uniform fraction of its exec time), wasting
  /// the occupancy so far; the framework retries with exponential backoff and
  /// quarantines the task (plus all descendants) after RetryConfig's
  /// max_attempts failures.
  double task_failure_prob = 0.0;
  /// Per-control-tick probability that the monitoring delta is withheld: the
  /// policy sees a peek-style snapshot (refreshed fields, `delta.exact =
  /// false`) and the journal coalesces into the next successful tick.
  double monitor_dropout_prob = 0.0;

  bool enabled() const {
    return crash_rate_per_hour > 0.0 || provision_failure_prob > 0.0 ||
           straggler_prob > 0.0 || task_failure_prob > 0.0 ||
           monitor_dropout_prob > 0.0;
  }
};

/// Memory as a second resource dimension (extension beyond the paper: the
/// Ponder / Sizey line of memory-prediction work). Disabled by default
/// (instance_mem_mb == 0 = unlimited memory): the engine never draws from the
/// memory RNG stream, never books reservations against capacity and never
/// schedules OOM events, so memory-off runs stay byte-identical to the
/// memory-less implementation — the same zero-rate discipline FaultConfig
/// established.
struct MemoryConfig {
  /// Physical memory per worker instance, MB. 0 = unlimited (the memory
  /// dimension is off end to end).
  double instance_mem_mb = 0.0;
  /// Lognormal sigma of the per-task noise around the reference peak memory
  /// (the true peak an attempt actually reaches; drawn once per task).
  double noise_sigma = 0.0;

  /// Reservation sizing policy: how the framework master (and the
  /// controller's MemoryPredictor) turn peak history into a reservation.
  enum class Sizing : std::uint8_t {
    /// Mean of the observed peaks for the task's stage.
    Mean,
    /// Percentile of the observed peaks (Sizey-style), `percentile` below.
    Percentile,
    /// Ground-truth reference peak times safety_factor (no learning; the
    /// wastage floor for a noise-free run).
    Oracle,
  };
  Sizing sizing = Sizing::Percentile;
  /// Percentile used by Sizing::Percentile, in (0, 1].
  double percentile = 0.95;
  /// Headroom multiplier applied on top of the sized estimate.
  double safety_factor = 1.1;
  /// Cold-start reservation when a stage has no completed peak yet, MB.
  /// 0 = fair share (instance_mem_mb / slots_per_instance).
  double default_mb = 0.0;
  /// Floor for any reservation, MB.
  double min_reservation_mb = 64.0;
  /// Reservation growth factor per OOM retry (retry-with-upsizing): attempt
  /// k after k OOM kills books `upsize_factor^k` times the sized estimate
  /// (clamped to instance capacity).
  double upsize_factor = 2.0;
  /// OOM kills tolerated per task before it is quarantined like a poison
  /// task (reuses the transient-failure quarantine machinery).
  std::uint32_t max_oom_attempts = 3;

  bool enabled() const { return instance_mem_mb > 0.0; }
};

/// Scheduled checkpointing on a shared checkpoint channel (extension beyond
/// the paper: the SMURFS InterferingCheckpoints line of work). Disabled by
/// default (channel_bandwidth_mb_per_s == 0): the engine schedules no
/// checkpoint events, draws no RNG, and books no channel time, so
/// checkpoint-off runs stay byte-identical to the pre-checkpoint
/// implementation — the same zero-rate discipline FaultConfig and
/// MemoryConfig established. When enabled, the legacy instantaneous
/// `CloudConfig::checkpoint_fraction` salvage is superseded: a killed attempt
/// salvages exactly the execution progress covered by its last *completed*
/// checkpoint write, and writes in flight at the kill are lost.
struct CheckpointConfig {
  /// Aggregate bandwidth of the shared checkpoint channel, MB/s. Concurrent
  /// checkpoint writes from co-located tasks share it processor-style (each
  /// proceeds at bandwidth / active writes), mirroring the transfer fabric
  /// model. 0 = checkpoint scheduling is off end to end.
  double channel_bandwidth_mb_per_s = 0.0;
  /// Checkpoint image size when the memory dimension is off (no reservation
  /// to derive it from), MB. With memory on, a task's image size is its
  /// booked reservation.
  double default_size_mb = 256.0;

  /// How the engine-side CheckpointScheduler picks the interval between a
  /// task's checkpoint writes.
  enum class IntervalPolicy : std::uint8_t {
    /// Young/Daly: sqrt(2 * write_cost * MTBF) from the online hazard
    /// estimate; hazard -> 0 pushes the interval to infinity (no
    /// checkpoints on a reliable cloud).
    YoungDaly,
    /// Fixed interval (`static_interval_seconds`) — the ablation.
    Static,
  };
  IntervalPolicy interval_policy = IntervalPolicy::YoungDaly;
  /// Interval used by IntervalPolicy::Static, seconds.
  double static_interval_seconds = 600.0;
  /// Floor under any computed interval, seconds (a near-zero Young/Daly
  /// interval under an extreme hazard estimate must not livelock a task).
  double min_interval_seconds = 30.0;

  /// Prior mean of the hazard estimate, crashes per instance-hour, blended
  /// with observed crashes per observed ready instance-hour. A zero prior
  /// with no observed crashes estimates zero hazard (Young/Daly never
  /// checkpoints until the first crash is seen).
  double hazard_prior_per_hour = 0.0;
  /// Pseudo-observation weight of the prior, instance-hours.
  double hazard_prior_weight_hours = 1.0;

  bool enabled() const { return channel_bandwidth_mb_per_s > 0.0; }
};

/// Bounded retry policy for transient task failures (only exercised when
/// FaultConfig::task_failure_prob > 0).
struct RetryConfig {
  /// Transient failures tolerated per task before it is quarantined as a
  /// poison task (its descendants are quarantined with it and the run
  /// completes without them; RunResult lists the quarantined set).
  std::uint32_t max_attempts = 3;
  /// Backoff before retry k (1-based) is `base * factor^(k-1)` sim-seconds.
  double backoff_base_seconds = 30.0;
  double backoff_factor = 2.0;
};

/// Static parameters of the simulated cloud site.
struct CloudConfig {
  /// Provisioning lag t: the maximum delay to launch or release an instance.
  /// Also the MAPE control interval (§III-A sets them equal).
  SimTime lag_seconds = 180.0;
  /// Charging unit u: instances are billed per started unit of this length.
  SimTime charging_unit_seconds = 900.0;
  /// Task slots per worker instance (l).
  std::uint32_t slots_per_instance = 4;
  /// Site capacity: maximum concurrently allocated instances (0 = unlimited).
  std::uint32_t max_instances = 12;
  /// Ground-truth variability model.
  VariabilityConfig variability;

  /// Restart-cost threshold as a fraction of u ("arbitrarily chosen as 0.2u
  /// ... but freely configurable", §III-D). Exposed for the ablation bench.
  double restart_cost_fraction = 0.2;

  /// Ready tasks per stage promoted to high dispatch priority so the online
  /// predictor gets early observations (§III-C dispatches "the first five
  /// ready-to-run tasks ... with high priority"). 0 disables the rule
  /// (ablation).
  std::uint32_t first_fire_priority = 5;

  /// Fixed per-dispatch scheduling overhead (seconds) between slot
  /// assignment and the start of the input transfer — the negotiation /
  /// job-startup cost of the real Condor stack. Counted as slot occupancy.
  double dispatch_overhead_seconds = 0.0;

  /// Extension (beyond the paper): fraction of a killed task's execution
  /// progress salvaged by checkpointing when it restarts (0 = none, the
  /// paper's model; 1 = perfect resume). Salvage reduces the next attempt's
  /// execution time; the steering policies discount restart costs by the
  /// same fraction. bench_checkpoint studies the interaction with the
  /// restart-cost threshold.
  double checkpoint_fraction = 0.0;

  /// Scheduled checkpointing on a shared channel (bandwidth 0 = off). When
  /// enabled it supersedes the instantaneous `checkpoint_fraction` model.
  CheckpointConfig checkpoint;

  /// Ground-truth fault injection (all-zero = reliable cloud).
  FaultConfig faults;
  /// Retry/backoff discipline for transient task failures.
  RetryConfig retry;
  /// Memory dimension (instance_mem_mb == 0 = unlimited, off).
  MemoryConfig memory;
};

}  // namespace wire::sim
