// The monitoring surface: everything a scaling policy is allowed to see.
//
// This mirrors what Pegasus/HTCondor kickstart records and the ExoGENI client
// expose (§II-C property 1): task lifecycle states, elapsed run times of
// running tasks, execution and transfer times of completed tasks, declared
// input sizes, and the instance pool with per-instance charge clocks. True
// *remaining* runtimes exist only inside the ground-truth simulator; keeping
// this boundary honest is what makes the prediction problem real.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/workflow.h"
#include "sim/config.h"

namespace wire::sim {

using InstanceId = std::uint32_t;
inline constexpr InstanceId kInvalidInstance = 0xFFFFFFFFu;

/// Sentinel for "no externally imposed pool ceiling". Distinct from 0, which
/// is a valid cap that blocks all growth (an arbiter may park a tenant at
/// zero while other tenants hold the whole site).
inline constexpr std::uint32_t kNoInstanceCap = 0xFFFFFFFFu;

/// Controller-visible lifecycle phase of a task.
enum class TaskPhase : std::uint8_t {
  /// Some predecessor has not completed yet.
  Pending,
  /// All predecessors complete; waiting in the framework's ready queue.
  Ready,
  /// Occupying a slot (transferring input, executing, or writing output).
  Running,
  /// Finished; kickstart record available.
  Completed,
};

/// Per-task observation, harvested each MAPE iteration (§III-B1: "execution
/// times (for completed tasks), run times (for running tasks), data transfer
/// times (for running and completed tasks) and input data sizes (for all
/// tasks)").
struct TaskObservation {
  TaskPhase phase = TaskPhase::Pending;
  /// Declared input size in MB (known for all tasks from the DAG).
  double input_mb = 0.0;
  /// Time the task (last) became ready — fired, in the paper's terms. The
  /// "run time" of prediction policy 2 counts from here: an unstarted peer is
  /// likely to run at least as long as the active tasks have been in flight
  /// since the stage fired. Negative while Pending.
  SimTime ready_since = -1.0;

  // --- Running tasks ---
  /// Time the current attempt started occupying its slot; < 0 if N/A.
  SimTime occupancy_start = -1.0;
  /// Elapsed wall time of the current attempt (transfer + exec so far).
  SimTime elapsed = 0.0;
  /// Elapsed pure execution time (0 while still transferring input).
  SimTime elapsed_exec = 0.0;
  /// Observed input-transfer duration of the current/last attempt; < 0 if the
  /// transfer has not finished yet.
  SimTime transfer_in_time = -1.0;
  /// Instance hosting the current attempt; kInvalidInstance if not running.
  InstanceId instance = kInvalidInstance;

  // --- Completed tasks (kickstart record) ---
  /// Pure execution duration; < 0 until completed.
  SimTime exec_time = -1.0;
  /// Total transfer duration (input + output); < 0 until completed.
  SimTime transfer_time = -1.0;

  /// Number of attempts so far (> 1 means the task was restarted after an
  /// instance release).
  std::uint32_t attempts = 0;

  // --- Fault injection (all zero/negative on a reliable cloud) ---
  /// Transient failures of this task so far (attempts that died
  /// mid-execution; instance-release restarts are *not* counted here).
  std::uint32_t failed_attempts = 0;
  /// Occupancy seconds the most recent failed attempt had accumulated when it
  /// died; < 0 if the task never failed. Failure-truncated, so the robust
  /// predictor harvest excludes it (PredictorConfig::harvest_failed_attempts
  /// is the contamination ablation).
  SimTime last_failed_elapsed = -1.0;

  // --- Memory dimension (all zero/negative when memory is off) ---
  /// Memory the current/last attempt has booked against its instance, MB;
  /// < 0 if the task is not occupying a slot. What the real resource manager
  /// reports for its own allocation.
  double mem_reservation_mb = -1.0;
  /// Measured peak memory of the completed task (kickstart record), MB;
  /// < 0 until completed. OOM-killed attempts do NOT reveal the true peak —
  /// only that it exceeded the reservation.
  double peak_mem_mb = -1.0;
  /// OOM kills of this task so far (distinct from failed_attempts: OOM is a
  /// sizing error, not a transient fault, and must not contaminate the
  /// execution-time failure harvest).
  std::uint32_t oom_attempts = 0;

  // --- Scheduled checkpointing (zero when CheckpointConfig is off) ---
  /// Execution seconds of the current attempt covered by its last completed
  /// checkpoint write — what a kill would salvage. Only meaningful while
  /// Running; resets with each new attempt. Checkpoint-aware victim
  /// selection charges `progress - checkpointed_exec` instead of the legacy
  /// blanket `1 - checkpoint_fraction` discount.
  SimTime checkpointed_exec = 0.0;
};

/// Controller-visible state of one worker instance.
struct InstanceObservation {
  InstanceId id = kInvalidInstance;
  /// Still booting: becomes usable at `ready_at`.
  bool provisioning = false;
  SimTime ready_at = 0.0;
  /// Remaining paid time in the current charging unit (r_j); only meaningful
  /// once the instance is ready.
  SimTime time_to_next_charge = 0.0;
  /// Already ordered to drain at its next charge boundary.
  bool draining = false;
  /// Spot-style revocation notice: the provider announced this instance will
  /// be reclaimed at `revoke_at`. Steering and the baselines must not count
  /// it as stable capacity for the next interval, and the lookahead charges
  /// restart cost for tasks stranded on it.
  bool revoking = false;
  /// Announced reclamation time; < 0 when not revoking.
  SimTime revoke_at = -1.0;
  /// Tasks currently occupying slots on this instance.
  std::vector<dag::TaskId> running_tasks;
  std::uint32_t free_slots = 0;
};

/// Per-tick change journal: what moved since the *previous* snapshot this
/// engine produced. Strictly derivable information — a policy diffing two
/// consecutive snapshots could compute every list itself — so publishing it
/// does not widen the controller-visible surface; it only lets consumers run
/// in O(changes) instead of rescanning all N tasks.
struct MonitorDelta {
  /// True when the journal is exact: the snapshot was produced by the engine
  /// and the lists cover everything that changed since the previous snapshot
  /// (or since the engine's bootstrap, for the first one). Hand-built
  /// snapshots (tests, harnesses) leave this false and consumers must fall
  /// back to a full scan.
  bool exact = false;
  /// Tasks that completed since the last snapshot, in ascending TaskId order
  /// (a task completes exactly once; no duplicates).
  std::vector<dag::TaskId> completed;
  /// Tasks whose lifecycle phase changed since the last snapshot (fired,
  /// dispatched, completed, restarted), deduplicated, ascending TaskId order.
  /// Superset of `completed`.
  std::vector<dag::TaskId> phase_changed;
  /// Instances requested since the last snapshot, in request order.
  std::vector<InstanceId> instances_added;
  /// Instances terminated since the last snapshot, in termination order.
  std::vector<InstanceId> instances_removed;
  /// Tasks that had an attempt die abnormally since the last snapshot —
  /// transient execution faults AND OOM kills alike — deduplicated,
  /// ascending TaskId order (a task failing twice within one interval
  /// appears once; `failed_attempts` / `oom_attempts` in its observation
  /// carry the counts and distinguish the two causes). Subset of
  /// `phase_changed`. Empty on a reliable, memory-unconstrained cloud.
  std::vector<dag::TaskId> failed;
  /// Instances whose *lifecycle* changed since the last snapshot: requested,
  /// terminated, boot completed (provisioning -> ready), drain ordered, a
  /// revocation notice posted, or the announced revoke_at moved. Ascending
  /// id order, deduplicated; superset of instances_added/removed. Ordinary
  /// slot churn (free_slots, running_tasks) and charge-clock advancement are
  /// deliberately NOT listed — they change on almost every busy tick and are
  /// visible in the instance rows themselves. Like every other list this is
  /// derivable by diffing consecutive snapshots' instance rows, so it widens
  /// nothing; it lets the incremental lookahead classify pool stability in
  /// O(1) instead of re-diffing the rows per tick.
  std::vector<InstanceId> instances_changed;
};

/// Snapshot passed to ScalingPolicy::plan at each control interval.
struct MonitorSnapshot {
  SimTime now = 0.0;
  /// Indexed by TaskId (size == workflow.task_count()).
  std::vector<TaskObservation> tasks;
  /// All live (provisioning or ready, not yet terminated) instances.
  std::vector<InstanceObservation> instances;
  /// Tasks currently in the ready queue, in dispatch order.
  std::vector<dag::TaskId> ready_queue;
  /// Number of tasks not yet completed.
  std::uint32_t incomplete_tasks = 0;
  /// Binding instance ceiling for this job: the site capacity, further
  /// lowered by an externally imposed share when the job runs under a
  /// multi-tenant arbiter (src/ensemble/). kNoInstanceCap = unlimited; 0 is
  /// a genuine zero share (the rare transient where an arbiter parks an
  /// empty tenant — all growth is blocked until the share recovers). Grow
  /// requests beyond the ceiling are clipped by the engine; cap-aware
  /// policies plan within it instead (and report their unconstrained demand
  /// through PoolCommand::desired_pool).
  std::uint32_t pool_cap = kNoInstanceCap;
  /// Changes since the previous snapshot (see MonitorDelta::exact).
  MonitorDelta delta;
};

}  // namespace wire::sim
