// Memory-reservation sizing (the engine side of the memory dimension).
//
// The framework master books a memory reservation against instance capacity
// for every dispatched task. Sizing follows the Ponder / Sizey line of work:
// a statistical estimate over the peaks observed so far (mean or percentile,
// or the ground-truth oracle for the wastage floor), a safety-factor of
// headroom, and selective upsizing — a task that was OOM-killed books
// `upsize_factor^oom_attempts` times the estimate on its next attempt.
//
// The statistical core (`sized_from_history`) is shared with the
// controller-side predict::MemoryPredictor so both sides size identically
// from identical histories; they differ only in *when* they observe peaks
// (the engine at completion events, the controller at control ticks).
#pragma once

#include <cstdint>
#include <vector>

#include "dag/workflow.h"
#include "sim/config.h"

namespace wire::sim {

/// Statistical reservation estimate from a sorted peak history (MB,
/// ascending). Applies the sizing policy and safety factor but neither the
/// upsizing nor the capacity/floor clamps. `fair_share_mb` is the cold-start
/// estimate used when the history is empty (and by Sizing::Oracle it is
/// ignored); `ref_peak_mb` feeds the oracle only.
double sized_from_history(const std::vector<double>& sorted_peaks,
                          const MemoryConfig& config, double fair_share_mb,
                          double ref_peak_mb);

/// Clamps a base estimate into an actual reservation: applies the
/// retry-with-upsizing growth for `oom_attempts` prior OOM kills, the
/// reservation floor, and the instance-capacity ceiling (a reservation the
/// instance cannot hold would deadlock dispatch).
double clamp_reservation(double base_mb, const MemoryConfig& config,
                         std::uint32_t oom_attempts);

/// Engine-side reservation sizer: per-stage peak histories observed at task
/// completion. Inert (never consulted) when the memory dimension is off.
class TaskMemorySizer {
 public:
  TaskMemorySizer(const MemoryConfig& config, std::uint32_t slots_per_instance,
                  std::size_t stage_count);

  /// Records the true peak of a completed task.
  void observe_peak(dag::StageId stage, double peak_mb);

  /// Reservation for dispatching a task of `stage` after `oom_attempts`
  /// prior OOM kills. `ref_peak_mb` is the task's declared reference peak
  /// (oracle sizing only).
  double reservation_mb(dag::StageId stage, double ref_peak_mb,
                        std::uint32_t oom_attempts) const;

  /// Swaps the sizing configuration in place, keeping the accumulated peak
  /// histories (predict::MemoryPredictor::reconfigure). The fair-share
  /// cold-start estimate is re-derived from the new capacity.
  void reconfigure(const MemoryConfig& config,
                   std::uint32_t slots_per_instance);

 private:
  MemoryConfig config_;
  double fair_share_mb_ = 0.0;
  /// Sorted ascending per stage.
  std::vector<std::vector<double>> stage_peaks_;
};

}  // namespace wire::sim
