// The framework master — our Pegasus WMS / HTCondor stand-in.
//
// Guards the DAG order, runs the ready queue, binds tasks to instance slots,
// collects kickstart-style records, and resubmits tasks whose instance was
// released under them. Dispatch order is FIFO by ready time, except that the
// first five ready tasks of each stage are raised to high priority — the
// paper's 94-line Condor patch that feeds the online predictor early
// observations per stage (§III-C).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "dag/workflow.h"
#include "sim/config.h"
#include "sim/monitor.h"

namespace wire::sim {

class MonitorStore;

/// Internal per-task lifecycle record (superset of TaskObservation).
struct TaskRuntime {
  TaskPhase phase = TaskPhase::Pending;
  std::uint32_t remaining_preds = 0;
  SimTime ready_at = -1.0;
  SimTime occupancy_start = -1.0;
  SimTime exec_start = -1.0;
  SimTime completed_at = -1.0;
  double transfer_in_time = -1.0;
  double exec_time = -1.0;
  double transfer_out_time = -1.0;
  InstanceId instance = kInvalidInstance;
  std::uint32_t slot = 0;
  std::uint32_t attempts = 0;
  /// Execution seconds salvaged from killed attempts via checkpointing
  /// (reduces the next attempt's execution time). 0 when checkpointing is
  /// disabled.
  double salvaged_exec = 0.0;
  /// Holds the stage's first-five promotion across resubmissions.
  bool high_priority = false;
  /// Transient (fault-injected) failures of this task. Instance-release
  /// restarts are counted in `attempts`/total_restarts, not here.
  std::uint32_t failed_attempts = 0;
  /// Occupancy seconds the most recent failed attempt had accumulated when
  /// it died; < 0 if the task never failed transiently.
  double last_failed_elapsed = -1.0;
  /// Poison task: exhausted its retries (or descends from a task that did).
  /// Stays Pending forever; counts as resolved for run completion.
  bool quarantined = false;

  // --- Memory dimension (inert when MemoryConfig is off) ---
  /// Memory booked against the hosting instance for the current/last
  /// attempt, MB; < 0 if never dispatched with a reservation.
  double mem_reservation_mb = -1.0;
  /// Ground-truth peak of this task, MB; drawn once by the engine at first
  /// execution start and cached (< 0 until drawn). The controller never
  /// sees it before completion.
  double true_peak_mem_mb = -1.0;
  /// OOM kills of this task (separate from failed_attempts: OOM retries are
  /// sizing errors, not transient faults).
  std::uint32_t oom_attempts = 0;

  // --- Scheduled checkpointing (inert when CheckpointConfig is off) ---
  /// Execution seconds of the current attempt covered by its last *completed*
  /// checkpoint write (what a kill salvages under scheduled checkpointing).
  double ckpt_durable_exec = 0.0;
  /// Staging slot the engine fills immediately before a kill with the
  /// attempt's actual execution progress in seconds (the engine tracks
  /// checkpoint stalls, so wall time since exec_start overstates it); < 0 =
  /// derive progress from exec_start.
  double ckpt_progress_exec = -1.0;
  /// Pure execution seconds of a completed attempt as reported by the
  /// engine (checkpoint-write stalls excluded); < 0 = use wall exec time.
  double ckpt_pure_exec = -1.0;
};

class FrameworkMaster {
 public:
  /// Binds to a workflow (kept by reference; must outlive the master) and
  /// enqueues its root tasks as ready at time 0. `first_fire_priority` is
  /// the per-stage count of ready tasks promoted to high dispatch priority
  /// (the paper's Condor patch uses 5).
  /// `scheduled_checkpoints` switches the salvage model from the legacy
  /// instantaneous `checkpoint_fraction` rule to explicit checkpoint events:
  /// a killed attempt salvages exactly its last committed checkpoint.
  explicit FrameworkMaster(const dag::Workflow& workflow,
                           std::uint32_t first_fire_priority = 5,
                           double checkpoint_fraction = 0.0,
                           bool scheduled_checkpoints = false);

  // --- Ready queue ---
  bool has_ready() const { return !ready_queue_.empty(); }
  std::size_t ready_count() const { return ready_queue_.size(); }
  /// Next task in dispatch order without removing it.
  std::optional<dag::TaskId> peek_ready() const;
  /// Removes and returns the next task in dispatch order.
  dag::TaskId pop_ready();
  /// Ready-queue contents in dispatch order (for monitoring).
  std::vector<dag::TaskId> ready_queue_snapshot() const;

  // --- Lifecycle transitions (driven by the simulator) ---
  /// Binds a ready task to (instance, slot); begins occupancy at `now`.
  /// `mem_reservation_mb` >= 0 books that much memory against the instance
  /// (memory dimension on); < 0 books nothing (memory off).
  void on_dispatch(dag::TaskId task, InstanceId instance, std::uint32_t slot,
                   SimTime now, double mem_reservation_mb = -1.0);
  /// Input transfer finished; execution begins.
  void on_transfer_in_done(dag::TaskId task, SimTime now);
  /// Execution finished; output transfer begins. `pure_exec_seconds` >= 0
  /// reports the attempt's execution time with checkpoint-write stalls
  /// excluded (scheduled checkpointing); < 0 = wall time since exec_start.
  void on_exec_done(dag::TaskId task, SimTime now,
                    double pure_exec_seconds = -1.0);
  /// Output transfer finished; task completes, slot frees. Returns the
  /// successors that became ready (already enqueued).
  std::vector<dag::TaskId> on_complete(dag::TaskId task, SimTime now);
  /// Kills and re-enqueues every task currently occupying a slot on
  /// `instance` (the instance is being released). Returns the killed tasks.
  std::vector<dag::TaskId> resubmit_tasks_on(InstanceId instance, SimTime now);

  // --- Fault handling (transient task failures) ---
  /// A running attempt died mid-execution: frees the slot, charges the
  /// occupancy so far as wasted, returns the task to Pending (the engine
  /// schedules the backoff retry or quarantines). Returns the task's new
  /// transient-failure count.
  std::uint32_t on_task_failed(dag::TaskId task, SimTime now);
  /// Re-enqueues a previously failed task whose retry backoff elapsed.
  /// Requires it to be Pending, unquarantined, with no open predecessors.
  void requeue_failed(dag::TaskId task, SimTime now);
  // --- Memory dimension ---
  /// A running attempt exceeded its reservation and was OOM-killed: frees
  /// the slot and the reservation, charges the occupancy as wasted, returns
  /// the task to Pending. Bumps oom_attempts (NOT failed_attempts — the
  /// exec-time failure harvest stays uncontaminated). Returns the task's new
  /// OOM count.
  std::uint32_t on_task_oom(dag::TaskId task, SimTime now);
  /// Caches the ground-truth peak the engine drew for this task.
  void set_true_peak_mem(dag::TaskId task, double peak_mb);

  // --- Scheduled checkpointing ---
  /// A checkpoint write for `task`'s current attempt finished on the shared
  /// channel: `durable_exec_seconds` of this attempt's execution are now
  /// recoverable. Forwards to the monitor store (TaskObservation::
  /// checkpointed_exec).
  void on_checkpoint_committed(dag::TaskId task, double durable_exec_seconds);
  /// Immediately before a kill, the engine stages the attempt's actual
  /// execution progress (wall time minus checkpoint stalls) so the kill
  /// paths charge true lost work instead of wall time.
  void stage_kill_progress(dag::TaskId task, double progress_exec_seconds);
  /// Memory currently booked on `instance`, MB (0 if none/unknown).
  double mem_used(InstanceId instance) const;

  /// Quarantines a poison task together with every (transitively) dependent
  /// descendant — all necessarily Pending, since an incomplete ancestor
  /// blocks them. Returns the newly quarantined tasks. Quarantined tasks
  /// count as resolved for all_complete().
  std::vector<dag::TaskId> quarantine(dag::TaskId task);

  // --- Slot bookkeeping ---
  /// Registers an instance with `slots` task slots (idempotent).
  void register_instance(InstanceId instance, std::uint32_t slots);
  std::uint32_t free_slots(InstanceId instance) const;
  /// Index of a free slot on `instance`; requires free_slots > 0.
  std::uint32_t take_free_slot(InstanceId instance) const;
  std::vector<dag::TaskId> tasks_on(InstanceId instance) const;

  // --- Progress / accounting ---
  /// True when every task is resolved: completed, or quarantined as poison.
  bool all_complete() const {
    return completed_ + quarantined_ == workflow_->task_count();
  }
  std::size_t completed_count() const { return completed_; }
  std::size_t quarantined_count() const { return quarantined_; }
  std::uint32_t total_restarts() const { return restarts_; }
  /// Total transient task failures across all tasks.
  std::uint32_t total_task_faults() const { return task_faults_; }
  /// Slot-seconds consumed by successful occupancy phases so far.
  double busy_slot_seconds() const { return busy_slot_seconds_; }
  /// Slot-seconds consumed by attempts that were killed (sunk cost paid).
  double wasted_slot_seconds() const { return wasted_slot_seconds_; }
  /// Execution seconds of killed attempts that no checkpoint (legacy
  /// fraction or committed write) salvaged — the rollback-waste numerator
  /// of the checkpoint study. Accounted in every salvage mode.
  double lost_work_seconds() const { return lost_work_seconds_; }
  /// Total OOM kills across all tasks.
  std::uint32_t total_oom_kills() const { return oom_kills_; }
  /// MB-seconds of reserved memory over all occupancy (every attempt holds
  /// its reservation from dispatch to slot release) — the wastage numerator.
  double mem_reserved_mb_seconds() const { return mem_reserved_mb_seconds_; }
  /// MB-seconds actually needed: true peak times the occupancy of successful
  /// attempts — the wastage denominator (what a clairvoyant sizer would
  /// book).
  double mem_used_mb_seconds() const { return mem_used_mb_seconds_; }

  const TaskRuntime& runtime(dag::TaskId task) const;
  const dag::Workflow& workflow() const { return *workflow_; }

  /// Fills the per-task portion of a monitoring snapshot from scratch — the
  /// O(total tasks) reference path. The engine's per-tick snapshots come from
  /// the incrementally maintained MonitorStore instead; the equivalence of
  /// the two is asserted by tests/test_sim_monitor_store.cpp.
  void fill_observations(SimTime now, std::vector<TaskObservation>& out) const;

  /// Attaches an incremental monitoring store (may be null to detach). The
  /// master notifies it at every observable lifecycle transition; the store's
  /// constructor journals the t = 0 bootstrap (roots fired as Ready) that
  /// this constructor performs before any store can be attached. The store
  /// must outlive the master or be detached first.
  void set_monitor_store(MonitorStore* store) { store_ = store; }

 private:
  void enqueue_ready(dag::TaskId task, SimTime now);
  TaskRuntime& mutable_runtime(dag::TaskId task);
  /// Shared kill-path salvage + lost-work accounting. `allow_legacy_salvage`
  /// mirrors the historical asymmetry: only instance-release kills salvage
  /// under the legacy fraction model (a crashed process died at an unknown
  /// point), while scheduled checkpoints recover committed progress on every
  /// kill kind.
  void salvage_on_kill(TaskRuntime& rt, SimTime now, bool allow_legacy_salvage);
  /// Releases a runtime's booked reservation (slot is being freed) and
  /// accumulates the reserved-MB-seconds wastage numerator.
  void release_memory(TaskRuntime& rt, SimTime now);

  const dag::Workflow* workflow_;
  std::uint32_t first_fire_priority_;
  double checkpoint_fraction_;
  bool scheduled_checkpoints_;
  std::vector<TaskRuntime> runtimes_;
  // Dispatch order: (priority class, ready time, id). Class 0 = first-five.
  std::set<std::tuple<int, SimTime, dag::TaskId>> ready_queue_;
  std::vector<std::uint32_t> stage_priority_granted_;
  std::unordered_map<InstanceId, std::vector<dag::TaskId>> slots_;
  MonitorStore* store_ = nullptr;
  std::size_t completed_ = 0;
  std::size_t quarantined_ = 0;
  std::uint32_t restarts_ = 0;
  std::uint32_t task_faults_ = 0;
  double busy_slot_seconds_ = 0.0;
  double wasted_slot_seconds_ = 0.0;
  double lost_work_seconds_ = 0.0;
  std::uint32_t oom_kills_ = 0;
  std::unordered_map<InstanceId, double> mem_used_;
  double mem_reserved_mb_seconds_ = 0.0;
  double mem_used_mb_seconds_ = 0.0;
};

}  // namespace wire::sim
