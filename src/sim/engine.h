// The single-job simulation engine, exposed as a steppable object so an
// external multiplexer (the ensemble driver, src/ensemble/) can interleave
// many concurrent jobs over one shared site clock without the engine owning
// the outer event loop. `simulate()` (sim/driver.h) remains the one-call
// wrapper for dedicated-site runs: it constructs a JobEngine, steps it to
// completion, and returns the result.
//
// Multi-tenant contract: `set_instance_cap` imposes an external pool ceiling
// (a site arbiter's share). The engine clips every grow request so that the
// live instance count never exceeds the cap, and surfaces the cap to the
// scaling policy through MonitorSnapshot::pool_cap so cap-aware policies
// (WIRE's steering, the reactive baselines) can plan within it instead of
// issuing requests that would be clipped. The cap may change between events;
// an arbiter that never lowers a tenant's cap below its current live count
// preserves `live <= cap` at all times (see ensemble/arbiter.h).
//
// All engine times are job-local: t = 0 is the engine's bootstrap, not the
// site epoch. A multiplexer that admits the job at site time T compares
// `T + next_event_time()` across tenants and leaves translation to itself.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/workflow.h"
#include "sim/cloud.h"
#include "sim/config.h"
#include "sim/driver.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/framework.h"
#include "sim/memory.h"
#include "sim/monitor_store.h"
#include "sim/scaling_policy.h"
#include "sim/variability.h"

namespace wire::sim {

// kNoInstanceCap (the "no externally imposed pool ceiling" sentinel) lives in
// sim/monitor.h next to MonitorSnapshot::pool_cap, which carries it across
// the policy boundary.

class JobEngine {
 public:
  /// Binds to a workflow and policy (both kept by reference; must outlive the
  /// engine). No events exist until start().
  JobEngine(const dag::Workflow& workflow, ScalingPolicy& policy,
            const CloudConfig& config, const RunOptions& options);

  /// Bootstraps the run at local time 0: notifies the policy, boots the
  /// initial pool (clamped to the instance cap), and schedules the first
  /// control tick. Requires !started().
  void start();
  bool started() const { return started_; }

  /// All tasks resolved — completed, or quarantined as poison under fault
  /// injection (trivially false before start()).
  bool done() const { return started_ && framework_.all_complete(); }

  /// Local time of the earliest pending event. Requires started() && !done().
  SimTime next_event_time() const;

  /// Local time of the earliest pending event that can change this engine's
  /// externally visible demand state (live_instances / requested_pool /
  /// done): ControlTick, InstanceDrain, InstanceCrash, and — only under
  /// fault injection, where a boot failure can terminate an instance —
  /// InstanceReady. +infinity when none is pending (a done engine). Local
  /// events strictly before this horizon neither read the instance cap nor
  /// move the demand signal, which is what lets a sharded multiplexer
  /// advance engines past them in parallel (see ensemble/driver.h).
  SimTime next_demand_event_time() const { return queue_.next_tracked_time(); }

  /// Local time of the event that completed the run; negative until done().
  SimTime end_time() const { return end_time_; }

  /// Processes exactly one event. Requires started() && !done(). Throws
  /// std::runtime_error past RunOptions::max_sim_seconds (a stuck policy).
  void step();

  /// Externally imposed pool ceiling (kNoInstanceCap = none beyond the site
  /// capacity in CloudConfig::max_instances; 0 = all growth blocked). Takes
  /// effect from the next grow request; already-live instances are never
  /// killed by a cap change.
  void set_instance_cap(std::uint32_t cap) { external_cap_ = cap; }
  std::uint32_t instance_cap() const { return external_cap_; }

  /// Live (provisioning + ready) instances right now.
  std::uint32_t live_instances() const { return cloud_.live_count(); }

  /// Pool size the policy asked for at its last control tick, before any
  /// cap clamping — the demand signal for demand-weighted arbitration.
  /// Defaults to the bootstrap pool size until the first tick.
  std::uint32_t requested_pool() const { return requested_pool_; }

  /// Projected memory demand (MB) the policy reported at its last control
  /// tick (PoolCommand::desired_mem_mb); 0.0 means the policy does not report
  /// one. Advisory second axis of the demand signal for memory-aware
  /// arbitration.
  double requested_mem_mb() const { return requested_mem_mb_; }

  std::uint32_t incomplete_tasks() const {
    return static_cast<std::uint32_t>(workflow_.task_count() -
                                      framework_.completed_count());
  }

  /// Finalizes the run: terminates any still-allocated instances (their
  /// started charging units stay billed) and assembles the result. Requires
  /// done(); call at most once.
  RunResult result();

  const dag::Workflow& workflow() const { return workflow_; }

  /// From-scratch snapshot reconstruction — the O(total tasks) reference
  /// path the incremental MonitorStore replaced on the control-tick hot
  /// path. Kept for equivalence testing (tests/test_sim_monitor_store.cpp
  /// asserts it matches the store field-for-field at every tick) and for the
  /// before/after Monitor-phase benchmark. The returned snapshot carries an
  /// empty, non-exact delta.
  MonitorSnapshot rebuild_snapshot(SimTime now) const;

  /// The store-maintained snapshot refreshed to `now` without consuming the
  /// delta journal (see MonitorStore::peek). Safe to call between events;
  /// does not perturb the run.
  const MonitorSnapshot& peek_monitor(SimTime now);

  /// Resident bytes of incremental monitoring state (§IV-F accounting).
  std::size_t monitor_state_bytes() const { return store_.state_bytes(); }

  /// Ground-truth pool state — billing/lifecycle invariant checks in tests.
  const CloudPool& cloud() const { return cloud_; }
  /// The run's fault model (journal + counters). Disabled (and empty) unless
  /// CloudConfig::faults has a nonzero rate.
  const FaultModel& faults() const { return faults_; }

 private:
  void dispatch_all(SimTime now);
  void handle_instance_ready(const Event& e);
  void handle_transfer_in_done(const Event& e);
  void handle_exec_done(const Event& e);
  void handle_transfer_out_done(const Event& e);
  void handle_control_tick(const Event& e);
  void handle_instance_drain(const Event& e);
  void handle_transfer_guard(const Event& e);
  void handle_transfer_start(const Event& e);
  void handle_instance_crash(const Event& e);
  void handle_task_faulted(const Event& e);
  void handle_task_retry(const Event& e);
  void handle_task_oom(const Event& e);

  /// Draws and schedules the crash/revocation of an instance that just
  /// became Ready (no-op with fault injection disabled).
  void maybe_arm_crash(InstanceId id, SimTime now);

  // --- Transfer model -------------------------------------------------
  // With aggregate_bandwidth == 0 every transfer runs at link speed for a
  // duration fixed when it starts. Otherwise transfers share the aggregate
  // fabric processor-style: each active transfer proceeds at
  // min(link, aggregate / n); a single epoch-stamped guard event tracks the
  // earliest projected completion and is re-armed whenever the active set
  // changes.
  bool shared_bandwidth() const {
    return config_.variability.aggregate_bandwidth_mb_per_s > 0.0;
  }
  double transfer_rate() const;
  void advance_transfers(SimTime now);
  void arm_transfer_guard(SimTime now);
  void begin_transfer(dag::TaskId task, bool inbound, double payload_mb,
                      SimTime now);
  void start_payload_transfer(dag::TaskId task, bool inbound,
                              double payload_mb, SimTime now);
  void finish_transfer_in(dag::TaskId task, SimTime now);
  void finish_transfer_out(dag::TaskId task, SimTime now);
  void purge_stale_transfers(SimTime now);

  void apply_command(const PoolCommand& cmd, SimTime now);

  /// The binding instance ceiling: min of the site capacity
  /// (CloudConfig::max_instances, where 0 means unlimited) and the external
  /// cap. kNoInstanceCap when neither binds; 0 is a genuine all-growth-blocked
  /// ceiling. Surfaced verbatim as MonitorSnapshot::pool_cap.
  std::uint32_t effective_cap() const;

  /// True if the event still refers to the task's current attempt.
  bool attempt_is_current(dag::TaskId task, std::uint32_t attempt) const {
    return framework_.runtime(task).attempts == attempt &&
           framework_.runtime(task).phase == TaskPhase::Running;
  }

  const dag::Workflow& workflow_;
  ScalingPolicy& policy_;
  CloudConfig config_;
  RunOptions options_;
  CloudPool cloud_;
  FrameworkMaster framework_;
  MonitorStore store_;
  VariabilityModel variability_;
  /// Fault sampler + journal on its own RNG stream; never drawn from when
  /// CloudConfig::faults is all-zero (fault-free runs stay byte-identical).
  FaultModel faults_;
  /// Engine-side reservation sizing from observed true peaks (the framework's
  /// own memory request policy). Inert when MemoryConfig is off.
  TaskMemorySizer sizer_;
  EventQueue queue_;
  struct ActiveTransfer {
    dag::TaskId task = dag::kInvalidTask;
    std::uint32_t attempt = 0;
    bool inbound = true;
    double remaining_mb = 0.0;
  };
  std::vector<ActiveTransfer> transfers_;
  SimTime transfers_updated_ = 0.0;
  std::uint64_t transfer_epoch_ = 0;
  SimTime end_time_ = -1.0;
  std::uint32_t control_ticks_ = 0;
  std::vector<PoolSample> timeline_;
  std::uint32_t external_cap_ = kNoInstanceCap;
  std::uint32_t requested_pool_ = 0;
  double requested_mem_mb_ = 0.0;
  bool started_ = false;
  bool finalized_ = false;
};

}  // namespace wire::sim
