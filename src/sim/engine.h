// The single-job simulation engine, exposed as a steppable object so an
// external multiplexer (the ensemble driver, src/ensemble/) can interleave
// many concurrent jobs over one shared site clock without the engine owning
// the outer event loop. `simulate()` (sim/driver.h) remains the one-call
// wrapper for dedicated-site runs: it constructs a JobEngine, steps it to
// completion, and returns the result.
//
// Multi-tenant contract: `set_instance_cap` imposes an external pool ceiling
// (a site arbiter's share). The engine clips every grow request so that the
// live instance count never exceeds the cap, and surfaces the cap to the
// scaling policy through MonitorSnapshot::pool_cap so cap-aware policies
// (WIRE's steering, the reactive baselines) can plan within it instead of
// issuing requests that would be clipped. The cap may change between events;
// an arbiter that never lowers a tenant's cap below its current live count
// preserves `live <= cap` at all times (see ensemble/arbiter.h).
//
// All engine times are job-local: t = 0 is the engine's bootstrap, not the
// site epoch. A multiplexer that admits the job at site time T compares
// `T + next_event_time()` across tenants and leaves translation to itself.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/workflow.h"
#include "policies/checkpoint.h"
#include "sim/cloud.h"
#include "sim/config.h"
#include "sim/driver.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/framework.h"
#include "sim/memory.h"
#include "sim/monitor_store.h"
#include "sim/scaling_policy.h"
#include "sim/variability.h"

namespace wire::sim {

// kNoInstanceCap (the "no externally imposed pool ceiling" sentinel) lives in
// sim/monitor.h next to MonitorSnapshot::pool_cap, which carries it across
// the policy boundary.

class JobEngine {
 public:
  /// Binds to a workflow and policy (both kept by reference; must outlive the
  /// engine). No events exist until start().
  JobEngine(const dag::Workflow& workflow, ScalingPolicy& policy,
            const CloudConfig& config, const RunOptions& options);

  /// Bootstraps the run at local time 0: notifies the policy, boots the
  /// initial pool (clamped to the instance cap), and schedules the first
  /// control tick. Requires !started().
  void start();
  bool started() const { return started_; }

  /// All tasks resolved — completed, or quarantined as poison under fault
  /// injection (trivially false before start()).
  bool done() const { return started_ && framework_.all_complete(); }

  /// Local time of the earliest pending event. Requires started() && !done().
  SimTime next_event_time() const;

  /// Local time of the earliest pending event that can change this engine's
  /// externally visible demand state (live_instances / requested_pool /
  /// done): ControlTick, InstanceDrain, InstanceCrash, and — only under
  /// fault injection, where a boot failure can terminate an instance —
  /// InstanceReady. +infinity when none is pending (a done engine). Local
  /// events strictly before this horizon neither read the instance cap nor
  /// move the demand signal, which is what lets a sharded multiplexer
  /// advance engines past them in parallel (see ensemble/driver.h).
  SimTime next_demand_event_time() const { return queue_.next_tracked_time(); }

  /// Local time of the event that completed the run; negative until done().
  SimTime end_time() const { return end_time_; }

  /// Processes exactly one event. Requires started() && !done(). Throws
  /// std::runtime_error past RunOptions::max_sim_seconds (a stuck policy).
  void step();

  /// Externally imposed pool ceiling (kNoInstanceCap = none beyond the site
  /// capacity in CloudConfig::max_instances; 0 = all growth blocked). Takes
  /// effect from the next grow request; already-live instances are never
  /// killed by a cap change.
  void set_instance_cap(std::uint32_t cap) { external_cap_ = cap; }
  std::uint32_t instance_cap() const { return external_cap_; }

  /// Live (provisioning + ready) instances right now.
  std::uint32_t live_instances() const { return cloud_.live_count(); }

  /// Pool size the policy asked for at its last control tick, before any
  /// cap clamping — the demand signal for demand-weighted arbitration.
  /// Defaults to the bootstrap pool size until the first tick.
  std::uint32_t requested_pool() const { return requested_pool_; }

  /// Projected memory demand (MB) the policy reported at its last control
  /// tick (PoolCommand::desired_mem_mb); 0.0 means the policy does not report
  /// one. Advisory second axis of the demand signal for memory-aware
  /// arbitration.
  double requested_mem_mb() const { return requested_mem_mb_; }

  /// Total checkpoint bytes (MB) the running set would write, latched at the
  /// last control tick like requested_pool() — the demand signal a site
  /// arbiter uses to stagger tenants on the shared checkpoint channel.
  /// Always 0.0 with scheduled checkpointing disabled.
  double checkpoint_demand_mb() const { return ckpt_demand_mb_; }

  /// Remaining budget (charging units) the policy reported at its last
  /// control tick (PoolCommand::remaining_budget_units); -1.0 means the
  /// policy does not track a budget. Advisory third axis of the demand
  /// signal for budget-weighted arbitration.
  double remaining_budget_units() const { return remaining_budget_units_; }

  /// Installs the effective checkpoint-channel bandwidth this tenant may use
  /// (a site arbiter's share of CheckpointConfig::channel_bandwidth_mb_per_s).
  /// `now` is engine-local time; in-flight writes are advanced at the old
  /// rate before the switch. No-op if the value is unchanged, so callers may
  /// re-install every rebalance without perturbing the event stream.
  void set_checkpoint_channel(double bandwidth_mb_per_s, SimTime now);

  /// Installs the cooperative-staggering window: checkpoint writes may only
  /// *start* in [offset + k*period, offset + k*period + length) (engine-local
  /// clock; the installer translates site-anchored offsets). period <= 0
  /// means always open. Windows are soft — a write started inside runs to
  /// completion — and advisory for already-scheduled checkpoint fires.
  void set_checkpoint_window(SimTime offset, double length, double period);

  /// The engine's live hazard estimate (crashes per ready instance-hour),
  /// fed by observed crashes and tick-sampled exposure. Zero until the prior
  /// or an observed crash contributes mass.
  double checkpoint_hazard_per_hour() const {
    return ckpt_sched_.hazard().hazard_per_hour();
  }

  std::uint32_t incomplete_tasks() const {
    return static_cast<std::uint32_t>(workflow_.task_count() -
                                      framework_.completed_count());
  }

  /// Finalizes the run: terminates any still-allocated instances (their
  /// started charging units stay billed) and assembles the result. Requires
  /// done(); call at most once.
  RunResult result();

  const dag::Workflow& workflow() const { return workflow_; }

  /// From-scratch snapshot reconstruction — the O(total tasks) reference
  /// path the incremental MonitorStore replaced on the control-tick hot
  /// path. Kept for equivalence testing (tests/test_sim_monitor_store.cpp
  /// asserts it matches the store field-for-field at every tick) and for the
  /// before/after Monitor-phase benchmark. The returned snapshot carries an
  /// empty, non-exact delta.
  MonitorSnapshot rebuild_snapshot(SimTime now) const;

  /// The store-maintained snapshot refreshed to `now` without consuming the
  /// delta journal (see MonitorStore::peek). Safe to call between events;
  /// does not perturb the run.
  const MonitorSnapshot& peek_monitor(SimTime now);

  /// Resident bytes of incremental monitoring state (§IV-F accounting).
  std::size_t monitor_state_bytes() const { return store_.state_bytes(); }

  /// Ground-truth pool state — billing/lifecycle invariant checks in tests.
  const CloudPool& cloud() const { return cloud_; }
  /// The run's fault model (journal + counters). Disabled (and empty) unless
  /// CloudConfig::faults has a nonzero rate.
  const FaultModel& faults() const { return faults_; }

 private:
  void dispatch_all(SimTime now);
  void handle_instance_ready(const Event& e);
  void handle_transfer_in_done(const Event& e);
  void handle_exec_done(const Event& e);
  void handle_transfer_out_done(const Event& e);
  void handle_control_tick(const Event& e);
  void handle_instance_drain(const Event& e);
  void handle_transfer_guard(const Event& e);
  void handle_transfer_start(const Event& e);
  void handle_instance_crash(const Event& e);
  void handle_task_faulted(const Event& e);
  void handle_task_retry(const Event& e);
  void handle_task_oom(const Event& e);
  void handle_task_checkpoint(const Event& e);
  void handle_checkpoint_guard(const Event& e);

  /// Draws and schedules the crash/revocation of an instance that just
  /// became Ready (no-op with fault injection disabled).
  void maybe_arm_crash(InstanceId id, SimTime now);

  // --- Transfer model -------------------------------------------------
  // With aggregate_bandwidth == 0 every transfer runs at link speed for a
  // duration fixed when it starts. Otherwise transfers share the aggregate
  // fabric processor-style: each active transfer proceeds at
  // min(link, aggregate / n); a single epoch-stamped guard event tracks the
  // earliest projected completion and is re-armed whenever the active set
  // changes.
  bool shared_bandwidth() const {
    return config_.variability.aggregate_bandwidth_mb_per_s > 0.0;
  }
  double transfer_rate() const;
  void advance_transfers(SimTime now);
  void arm_transfer_guard(SimTime now);
  void begin_transfer(dag::TaskId task, bool inbound, double payload_mb,
                      SimTime now);
  void start_payload_transfer(dag::TaskId task, bool inbound,
                              double payload_mb, SimTime now);
  void finish_transfer_in(dag::TaskId task, SimTime now);
  void finish_transfer_out(dag::TaskId task, SimTime now);
  void purge_stale_transfers(SimTime now);

  // --- Scheduled checkpointing (CheckpointConfig::enabled()) ------------
  // Execution runs in segments punctuated by checkpoint writes on a shared
  // channel that mirrors the transfer fabric: active writes share
  // ckpt_bandwidth_ processor-style and an epoch-stamped CheckpointGuard
  // tracks the earliest projected completion. Exactly one exec event
  // (TaskCheckpoint xor ExecDone) is pending per running attempt; while a
  // write is in flight the task stalls (occupying its slot) and resumes when
  // the write commits. A killed attempt salvages only committed checkpoints;
  // its in-flight write is purged and counted lost.
  bool checkpoint_active() const {
    return config_.checkpoint.enabled() && ckpt_bandwidth_ > 0.0;
  }
  /// Checkpoint image size: the attempt's memory reservation when the memory
  /// dimension is on, CheckpointConfig::default_size_mb otherwise.
  double ckpt_size_mb(dag::TaskId task) const;
  /// Earliest time >= t at which a checkpoint write may start under the
  /// installed staggering window.
  SimTime ckpt_window_defer(SimTime t) const;
  /// Schedules the attempt's next exec event from a segment starting at
  /// `now`: a TaskCheckpoint if one more interval fits before the remaining
  /// execution ends, the final ExecDone otherwise.
  void schedule_exec_segment(dag::TaskId task, SimTime now);
  double ckpt_write_rate() const {
    return ckpt_writes_.empty()
               ? 0.0
               : ckpt_bandwidth_ / static_cast<double>(ckpt_writes_.size());
  }
  void advance_ckpt_writes(SimTime now);
  void arm_ckpt_guard(SimTime now);
  /// Drops writes whose attempt died (counting them lost); call wherever an
  /// attempt can be killed.
  void purge_stale_ckpt_writes(SimTime now);
  /// Stages the killed attempt's true executed seconds (committed + live
  /// segment) with the framework so salvage charges exact lost work.
  void stage_ckpt_kill(dag::TaskId task, SimTime now);
  /// Feeds tick-sampled ready-instance exposure to the hazard estimator.
  void ckpt_observe_exposure(SimTime now);

  void apply_command(const PoolCommand& cmd, SimTime now);

  /// The binding instance ceiling: min of the site capacity
  /// (CloudConfig::max_instances, where 0 means unlimited) and the external
  /// cap. kNoInstanceCap when neither binds; 0 is a genuine all-growth-blocked
  /// ceiling. Surfaced verbatim as MonitorSnapshot::pool_cap.
  std::uint32_t effective_cap() const;

  /// True if the event still refers to the task's current attempt.
  bool attempt_is_current(dag::TaskId task, std::uint32_t attempt) const {
    return framework_.runtime(task).attempts == attempt &&
           framework_.runtime(task).phase == TaskPhase::Running;
  }

  const dag::Workflow& workflow_;
  ScalingPolicy& policy_;
  CloudConfig config_;
  RunOptions options_;
  CloudPool cloud_;
  FrameworkMaster framework_;
  MonitorStore store_;
  VariabilityModel variability_;
  /// Fault sampler + journal on its own RNG stream; never drawn from when
  /// CloudConfig::faults is all-zero (fault-free runs stay byte-identical).
  FaultModel faults_;
  /// Engine-side reservation sizing from observed true peaks (the framework's
  /// own memory request policy). Inert when MemoryConfig is off.
  TaskMemorySizer sizer_;
  EventQueue queue_;
  struct ActiveTransfer {
    dag::TaskId task = dag::kInvalidTask;
    std::uint32_t attempt = 0;
    bool inbound = true;
    double remaining_mb = 0.0;
  };
  std::vector<ActiveTransfer> transfers_;
  SimTime transfers_updated_ = 0.0;
  std::uint64_t transfer_epoch_ = 0;
  /// Per-task segmented-execution state of the *current* attempt (valid only
  /// while `attempt` matches TaskRuntime::attempts). exec_total is the
  /// attempt's post-salvage execution demand; exec_done the seconds already
  /// executed; segment_start the start of the live segment (< 0 while
  /// stalled on a write or not executing). Sized task_count only when
  /// scheduled checkpointing is enabled.
  struct TaskCkptState {
    double exec_total = 0.0;
    double exec_done = 0.0;
    SimTime segment_start = -1.0;
    std::uint32_t attempt = 0;
    /// Event ending the attempt's execution: ExecDone, or the injected
    /// TaskFaulted/TaskOom of a doomed attempt.
    EventKind terminal = EventKind::ExecDone;
  };
  struct ActiveCkptWrite {
    dag::TaskId task = dag::kInvalidTask;
    std::uint32_t attempt = 0;
    double remaining_mb = 0.0;
    SimTime started = 0.0;
  };
  std::vector<TaskCkptState> ckpt_states_;
  std::vector<ActiveCkptWrite> ckpt_writes_;
  SimTime ckpt_writes_updated_ = 0.0;
  std::uint64_t ckpt_epoch_ = 0;
  /// Effective channel bandwidth (arbiter share; starts at the configured
  /// full channel) and the cooperative-staggering window.
  double ckpt_bandwidth_ = 0.0;
  SimTime ckpt_window_offset_ = 0.0;
  double ckpt_window_length_ = 0.0;
  double ckpt_window_period_ = 0.0;
  policies::CheckpointScheduler ckpt_sched_;
  SimTime ckpt_exposure_mark_ = 0.0;
  double ckpt_demand_mb_ = 0.0;
  std::uint32_t ckpt_completed_ = 0;
  std::uint32_t ckpt_lost_ = 0;
  double ckpt_io_slot_seconds_ = 0.0;
  SimTime end_time_ = -1.0;
  std::uint32_t control_ticks_ = 0;
  std::vector<PoolSample> timeline_;
  std::uint32_t external_cap_ = kNoInstanceCap;
  std::uint32_t requested_pool_ = 0;
  double requested_mem_mb_ = 0.0;
  double remaining_budget_units_ = -1.0;
  bool started_ = false;
  bool finalized_ = false;
};

}  // namespace wire::sim
