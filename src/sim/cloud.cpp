#include "sim/cloud.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wire::sim {

namespace {
/// Billing epsilon: avoids charging an extra unit when a drain lands exactly
/// on a charge boundary up to floating-point error.
constexpr double kBillingEps = 1e-6;
}  // namespace

InstanceId CloudPool::request(SimTime now, double speed_factor,
                              SimTime lag_override) {
  Instance inst;
  inst.id = static_cast<InstanceId>(instances_.size());
  inst.state = InstanceState::Provisioning;
  inst.requested_at = now;
  inst.ready_at =
      now + (lag_override >= 0.0 ? lag_override : config_.lag_seconds);
  inst.speed_factor = speed_factor;
  instances_.push_back(inst);
  live_ids_.push_back(inst.id);  // ids increase, so live_ids_ stays sorted
  peak_live_ = std::max(peak_live_, live_count());
  return inst.id;
}

InstanceId CloudPool::request_ready(SimTime now, double speed_factor) {
  Instance inst;
  inst.id = static_cast<InstanceId>(instances_.size());
  inst.state = InstanceState::Ready;
  inst.requested_at = now;
  inst.ready_at = now;
  inst.speed_factor = speed_factor;
  instances_.push_back(inst);
  live_ids_.push_back(inst.id);
  peak_live_ = std::max(peak_live_, live_count());
  return inst.id;
}

Instance& CloudPool::mutable_instance(InstanceId id) {
  WIRE_REQUIRE(id < instances_.size(), "unknown instance id");
  return instances_[id];
}

const Instance& CloudPool::instance(InstanceId id) const {
  WIRE_REQUIRE(id < instances_.size(), "unknown instance id");
  return instances_[id];
}

void CloudPool::mark_ready(InstanceId id, SimTime now) {
  Instance& inst = mutable_instance(id);
  if (inst.state == InstanceState::Terminated) return;  // cancelled mid-boot
  WIRE_CHECK(inst.state == InstanceState::Provisioning,
             "mark_ready on non-provisioning instance");
  WIRE_CHECK(std::abs(now - inst.ready_at) < 1e-9,
             "mark_ready at unexpected time");
  inst.state = InstanceState::Ready;
}

void CloudPool::terminate(InstanceId id, SimTime now) {
  Instance& inst = mutable_instance(id);
  WIRE_REQUIRE(inst.state != InstanceState::Terminated,
               "instance already terminated");
  inst.state = InstanceState::Terminated;
  inst.terminated_at = now;
  inst.drain_at = -1.0;
  const auto it = std::lower_bound(live_ids_.begin(), live_ids_.end(), id);
  WIRE_CHECK(it != live_ids_.end() && *it == id,
             "terminated instance missing from the live index");
  live_ids_.erase(it);
}

SimTime CloudPool::schedule_drain(InstanceId id, SimTime now) {
  Instance& inst = mutable_instance(id);
  WIRE_REQUIRE(inst.state == InstanceState::Ready,
               "can only drain a ready instance");
  const SimTime boundary = now + time_to_next_charge(id, now);
  inst.drain_at = boundary;
  return boundary;
}

void CloudPool::cancel_drain(InstanceId id) {
  Instance& inst = mutable_instance(id);
  inst.drain_at = -1.0;
}

void CloudPool::mark_doomed(InstanceId id, SimTime crash_at,
                            SimTime notice_at) {
  Instance& inst = mutable_instance(id);
  WIRE_REQUIRE(inst.state == InstanceState::Ready,
               "can only doom a ready instance");
  WIRE_REQUIRE(notice_at <= crash_at, "revocation notice after the crash");
  inst.crash_at = crash_at;
  inst.crash_notice_at = notice_at;
}

bool CloudPool::revocation_announced(InstanceId id, SimTime now) const {
  const Instance& inst = instance(id);
  return inst.state != InstanceState::Terminated &&
         inst.crash_notice_at >= 0.0 && now >= inst.crash_notice_at;
}

bool CloudPool::is_usable(InstanceId id, SimTime now) const {
  const Instance& inst = instance(id);
  return inst.state == InstanceState::Ready && inst.drain_at < 0.0 &&
         now >= inst.ready_at;
}

std::vector<InstanceId> CloudPool::dispatchable(SimTime now) const {
  std::vector<InstanceId> out;
  for (InstanceId id : live_ids_) {
    if (is_usable(id, now)) out.push_back(id);
  }
  return out;
}

SimTime CloudPool::time_to_next_charge(InstanceId id, SimTime now) const {
  const Instance& inst = instance(id);
  WIRE_REQUIRE(inst.state == InstanceState::Ready, "instance not ready");
  WIRE_REQUIRE(now >= inst.ready_at - 1e-9, "query before charge start");
  const double u = config_.charging_unit_seconds;
  const double elapsed = std::max(0.0, now - inst.ready_at);
  const double into_unit = std::fmod(elapsed, u);
  // Exactly on a boundary means a fresh unit just started (the previous one
  // was fully consumed): a full unit remains.
  if (into_unit < kBillingEps) return u - into_unit;
  return u - into_unit;
}

double CloudPool::charged_units(InstanceId id, SimTime end) const {
  const Instance& inst = instance(id);
  if (inst.state == InstanceState::Provisioning) return 0.0;
  SimTime stop = end;
  if (inst.state == InstanceState::Terminated) {
    stop = std::min(stop, inst.terminated_at);
  }
  if (inst.state != InstanceState::Provisioning && stop <= inst.ready_at) {
    // Never reached usable life before the accounting horizon.
    return inst.state == InstanceState::Terminated &&
           inst.terminated_at <= inst.ready_at ? 0.0 : 1.0;
  }
  const double alive = stop - inst.ready_at;
  const double u = config_.charging_unit_seconds;
  return std::max(1.0, std::ceil((alive - kBillingEps) / u));
}

double CloudPool::total_charged_units(SimTime end) const {
  double total = 0.0;
  for (const Instance& inst : instances_) {
    if (inst.state == InstanceState::Provisioning) {
      // Still booting at the horizon: bills its first unit on arrival; count
      // nothing (the driver terminates all instances at run end, so this only
      // happens for mid-run queries).
      continue;
    }
    total += charged_units(inst.id, end);
  }
  return total;
}

double CloudPool::total_ready_seconds(SimTime end) const {
  double total = 0.0;
  for (const Instance& inst : instances_) {
    if (inst.state == InstanceState::Provisioning) continue;
    SimTime stop = end;
    if (inst.state == InstanceState::Terminated) {
      stop = std::min(stop, inst.terminated_at);
    }
    total += std::max(0.0, stop - inst.ready_at);
  }
  return total;
}

}  // namespace wire::sim
