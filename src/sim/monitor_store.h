// Incrementally maintained monitoring state — the Monitor phase of the MAPE
// loop as a delta-journaled store instead of a per-tick rebuild.
//
// The engine (and its framework master) notify the store at exactly the
// events that change a controller-visible observation: a task fires, is
// dispatched, finishes its input transfer, completes, or is restarted; an
// instance is requested or terminated. The store applies each change to its
// resident MonitorSnapshot in place and journals it, so producing the
// snapshot at a control tick costs O(running tasks + live instances + ready
// queue) — the active set — instead of O(total tasks). On Epigenomics-L
// (4005 tasks) with a 12-instance site that is two orders of magnitude.
//
// `FrameworkMaster::fill_observations` / `JobEngine::rebuild_snapshot` remain
// as the from-scratch reference path; tests/test_sim_monitor_store.cpp
// asserts field-for-field equivalence at every tick over fuzzed runs with
// restarts, forced drains, and cap changes.
//
// The store publishes nothing a policy could not already derive by diffing
// consecutive snapshots (MonitorDelta documents this), so the honest
// information boundary of monitor.h is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/workflow.h"
#include "sim/cloud.h"
#include "sim/config.h"
#include "sim/framework.h"
#include "sim/monitor.h"

namespace wire::sim {

class MonitorStore {
 public:
  /// Binds to a workflow (kept by reference; must outlive the store) and
  /// journals the bootstrap state directly: every task starts Pending except
  /// the workflow roots, which a FrameworkMaster enqueues as Ready at time 0
  /// in its own constructor (before any store can be attached). Baking that
  /// invariant in here replaces the former one-time O(tasks) sync() pass;
  /// the bootstrap is the first snapshot's baseline, so the journal starts
  /// empty and the first delta covers changes from t = 0 on.
  explicit MonitorStore(const dag::Workflow& workflow);

  // --- Task hooks (driven by FrameworkMaster) ---
  /// Task became Ready: a fresh fire or a restart after its instance was
  /// released. Resets every attempt-scoped field.
  void on_task_ready(dag::TaskId task, SimTime now, std::uint32_t attempts);
  /// Task bound to (instance, slot); occupancy starts at `now`.
  /// `mem_reservation_mb` < 0 = no reservation (memory dimension off).
  void on_task_dispatched(dag::TaskId task, InstanceId instance, SimTime now,
                          std::uint32_t attempts,
                          double mem_reservation_mb = -1.0);
  /// Input transfer finished; execution starts at `now`.
  void on_transfer_in_done(dag::TaskId task, double transfer_in_time,
                           SimTime now);
  /// Task completed with its kickstart record. `peak_mem_mb` < 0 = no
  /// memory measurement (memory dimension off).
  void on_task_completed(dag::TaskId task, double exec_time,
                         double transfer_time, double peak_mem_mb = -1.0);
  /// A running attempt died transiently (fault injection): the task drops
  /// back to Pending awaiting its retry backoff (or quarantine).
  void on_task_failed(dag::TaskId task, std::uint32_t attempts,
                      std::uint32_t failed_attempts, double elapsed);
  /// A running attempt was OOM-killed: back to Pending awaiting its upsized
  /// retry (or quarantine). Listed in MonitorDelta::failed like a transient
  /// failure, but failed_attempts is untouched — consumers discriminate via
  /// TaskObservation::oom_attempts.
  void on_task_oom(dag::TaskId task, std::uint32_t attempts,
                   std::uint32_t oom_attempts);
  /// A checkpoint write committed for `task`'s current attempt:
  /// TaskObservation::checkpointed_exec now covers `durable_exec_seconds`.
  /// Not journaled — like elapsed/elapsed_exec it is an attribute of the
  /// running attempt, visible in the task row itself, and resets with the
  /// attempt (on_task_ready).
  void on_checkpoint_committed(dag::TaskId task, double durable_exec_seconds);

  // --- Instance hooks (driven by JobEngine) ---
  void on_instance_added(InstanceId instance);
  void on_instance_removed(InstanceId instance);

  // --- Step batching (driven by JobEngine) ---
  /// Brackets one engine step: between begin_step and end_step,
  /// journal_phase_change appends raw task ids to a step buffer (branchless)
  /// instead of running the stamp-dedup per event; end_step coalesces the
  /// buffer into the pending journal in one pass. During a dispatch storm
  /// (an instance boot binding dozens of tasks in one event) that is one
  /// coalesce per step instead of one dedup probe per transition. A refresh
  /// mid-step (control ticks fire inside a step) flushes the buffer first,
  /// so published deltas are identical to the per-event path.
  void begin_step();
  void end_step();

  /// Finalizes the per-tick view: refreshes the time-dependent fields of the
  /// running set, rebuilds the instance rows (O(live)) and the ready queue
  /// (O(ready)), publishes the accumulated delta journal (exact = true), and
  /// returns the snapshot. `pool_cap` follows MonitorSnapshot semantics
  /// (kNoInstanceCap = unlimited).
  const MonitorSnapshot& refresh(SimTime now, std::uint32_t pool_cap,
                                 const CloudPool& cloud,
                                 const FrameworkMaster& framework,
                                 const CloudConfig& config);

  /// Like refresh but without consuming the journal: the returned snapshot
  /// carries an empty, non-exact delta and the pending journal stays intact
  /// for the next real refresh. Safe to call between events (benches, tests)
  /// without perturbing the run.
  const MonitorSnapshot& peek(SimTime now, std::uint32_t pool_cap,
                              const CloudPool& cloud,
                              const FrameworkMaster& framework,
                              const CloudConfig& config);

  /// Tasks currently observed Running — O(1), matches the snapshot's
  /// Running-phase count.
  std::uint32_t running_count() const {
    return static_cast<std::uint32_t>(running_.size());
  }

  const MonitorSnapshot& snapshot() const { return snap_; }

  /// Resident footprint in bytes (overhead accounting).
  std::size_t state_bytes() const;

 private:
  void refresh_fields(SimTime now, std::uint32_t pool_cap,
                      const CloudPool& cloud, const FrameworkMaster& framework,
                      const CloudConfig& config);
  void journal_phase_change(dag::TaskId task);
  /// Stamp-dedup coalesce of the step buffer into the pending journal.
  void flush_step();
  void running_insert(dag::TaskId task);
  void running_erase(dag::TaskId task);

  /// The lifecycle-relevant projection of one instance row, kept from the
  /// previous *published* snapshot so refresh can diff rows into
  /// MonitorDelta::instances_changed. Peeks do not update it: a dropout
  /// tick's lifecycle changes coalesce into the next exact delta.
  struct InstanceLifecycle {
    InstanceId id = kInvalidInstance;
    bool provisioning = false;
    bool draining = false;
    bool revoking = false;
    SimTime ready_at = 0.0;
    SimTime revoke_at = -1.0;
  };

  const dag::Workflow* workflow_;
  MonitorSnapshot snap_;
  /// Execution-start time of each task's current attempt (< 0 while still
  /// transferring input). Internal only — never surfaced to policies.
  std::vector<SimTime> exec_start_;
  /// Tasks observed Running, with O(1) membership (index + 1; 0 = absent).
  std::vector<dag::TaskId> running_;
  std::vector<std::uint32_t> running_pos_;
  /// Accumulating journal, published (swapped into snap_.delta) at refresh.
  MonitorDelta pending_;
  /// Dedup stamp for pending_.phase_changed (== journal_epoch_ when already
  /// journaled this interval).
  std::vector<std::uint64_t> phase_stamp_;
  std::uint64_t journal_epoch_ = 1;
  /// Raw (possibly duplicated) phase changes of the current engine step.
  std::vector<dag::TaskId> step_phase_;
  bool in_step_ = false;
  /// Sorted-by-id lifecycle rows of the last published snapshot (and a
  /// scratch buffer reused across refreshes).
  std::vector<InstanceLifecycle> prev_lifecycle_;
  std::vector<InstanceLifecycle> cur_lifecycle_;
};

}  // namespace wire::sim
