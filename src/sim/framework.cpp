#include "sim/framework.h"

#include <algorithm>

#include "sim/monitor_store.h"
#include "util/check.h"

namespace wire::sim {

using dag::TaskId;

FrameworkMaster::FrameworkMaster(const dag::Workflow& workflow,
                                 std::uint32_t first_fire_priority,
                                 double checkpoint_fraction,
                                 bool scheduled_checkpoints)
    : workflow_(&workflow),
      first_fire_priority_(first_fire_priority),
      checkpoint_fraction_(checkpoint_fraction),
      scheduled_checkpoints_(scheduled_checkpoints),
      runtimes_(workflow.task_count()),
      stage_priority_granted_(workflow.stage_count(), 0) {
  for (const dag::TaskSpec& t : workflow.tasks()) {
    runtimes_[t.id].remaining_preds =
        static_cast<std::uint32_t>(workflow.predecessors(t.id).size());
  }
  for (TaskId root : workflow.roots()) {
    enqueue_ready(root, 0.0);
  }
}

TaskRuntime& FrameworkMaster::mutable_runtime(TaskId task) {
  WIRE_REQUIRE(task < runtimes_.size(), "unknown task id");
  return runtimes_[task];
}

const TaskRuntime& FrameworkMaster::runtime(TaskId task) const {
  WIRE_REQUIRE(task < runtimes_.size(), "unknown task id");
  return runtimes_[task];
}

void FrameworkMaster::enqueue_ready(TaskId task, SimTime now) {
  TaskRuntime& rt = mutable_runtime(task);
  WIRE_CHECK(rt.phase == TaskPhase::Pending || rt.phase == TaskPhase::Running,
             "enqueue_ready from invalid phase");
  const dag::StageId stage = workflow_->task(task).stage;
  if (!rt.high_priority &&
      stage_priority_granted_[stage] < first_fire_priority_) {
    rt.high_priority = true;
    ++stage_priority_granted_[stage];
  }
  rt.phase = TaskPhase::Ready;
  rt.ready_at = now;
  rt.occupancy_start = -1.0;
  rt.exec_start = -1.0;
  rt.instance = kInvalidInstance;
  ready_queue_.emplace(rt.high_priority ? 0 : 1, now, task);
  if (store_ != nullptr) store_->on_task_ready(task, now, rt.attempts);
}

std::optional<TaskId> FrameworkMaster::peek_ready() const {
  if (ready_queue_.empty()) return std::nullopt;
  return std::get<2>(*ready_queue_.begin());
}

TaskId FrameworkMaster::pop_ready() {
  WIRE_REQUIRE(!ready_queue_.empty(), "pop_ready on empty queue");
  const TaskId task = std::get<2>(*ready_queue_.begin());
  ready_queue_.erase(ready_queue_.begin());
  return task;
}

std::vector<TaskId> FrameworkMaster::ready_queue_snapshot() const {
  std::vector<TaskId> out;
  out.reserve(ready_queue_.size());
  for (const auto& entry : ready_queue_) out.push_back(std::get<2>(entry));
  return out;
}

void FrameworkMaster::register_instance(InstanceId instance,
                                        std::uint32_t slots) {
  auto [it, inserted] = slots_.try_emplace(instance);
  if (inserted) {
    it->second.assign(slots, dag::kInvalidTask);
  }
}

std::uint32_t FrameworkMaster::free_slots(InstanceId instance) const {
  const auto it = slots_.find(instance);
  if (it == slots_.end()) return 0;
  return static_cast<std::uint32_t>(
      std::count(it->second.begin(), it->second.end(), dag::kInvalidTask));
}

std::uint32_t FrameworkMaster::take_free_slot(InstanceId instance) const {
  const auto it = slots_.find(instance);
  WIRE_REQUIRE(it != slots_.end(), "instance not registered");
  for (std::uint32_t s = 0; s < it->second.size(); ++s) {
    if (it->second[s] == dag::kInvalidTask) return s;
  }
  WIRE_REQUIRE(false, "no free slot on instance");
  return 0;
}

std::vector<TaskId> FrameworkMaster::tasks_on(InstanceId instance) const {
  std::vector<TaskId> out;
  const auto it = slots_.find(instance);
  if (it == slots_.end()) return out;
  for (TaskId t : it->second) {
    if (t != dag::kInvalidTask) out.push_back(t);
  }
  return out;
}

void FrameworkMaster::on_dispatch(TaskId task, InstanceId instance,
                                  std::uint32_t slot, SimTime now,
                                  double mem_reservation_mb) {
  TaskRuntime& rt = mutable_runtime(task);
  WIRE_REQUIRE(rt.phase == TaskPhase::Ready, "dispatch of non-ready task");
  auto it = slots_.find(instance);
  WIRE_REQUIRE(it != slots_.end(), "dispatch to unregistered instance");
  WIRE_REQUIRE(slot < it->second.size(), "slot index out of range");
  WIRE_REQUIRE(it->second[slot] == dag::kInvalidTask, "slot already occupied");

  it->second[slot] = task;
  rt.phase = TaskPhase::Running;
  rt.occupancy_start = now;
  rt.exec_start = -1.0;
  rt.transfer_in_time = -1.0;
  rt.instance = instance;
  rt.slot = slot;
  ++rt.attempts;
  rt.mem_reservation_mb = mem_reservation_mb;
  if (mem_reservation_mb >= 0.0) {
    mem_used_[instance] += mem_reservation_mb;
  }
  if (store_ != nullptr) {
    store_->on_task_dispatched(task, instance, now, rt.attempts,
                               mem_reservation_mb);
  }
}

void FrameworkMaster::release_memory(TaskRuntime& rt, SimTime now) {
  if (rt.mem_reservation_mb < 0.0) return;
  mem_reserved_mb_seconds_ +=
      rt.mem_reservation_mb * (now - rt.occupancy_start);
  auto it = mem_used_.find(rt.instance);
  WIRE_CHECK(it != mem_used_.end(), "reservation on unknown instance");
  it->second -= rt.mem_reservation_mb;
  if (it->second < 1e-9) it->second = 0.0;  // absorb FP residue
}

double FrameworkMaster::mem_used(InstanceId instance) const {
  const auto it = mem_used_.find(instance);
  return it == mem_used_.end() ? 0.0 : it->second;
}

void FrameworkMaster::set_true_peak_mem(TaskId task, double peak_mb) {
  mutable_runtime(task).true_peak_mem_mb = peak_mb;
}

void FrameworkMaster::on_checkpoint_committed(TaskId task,
                                              double durable_exec_seconds) {
  TaskRuntime& rt = mutable_runtime(task);
  WIRE_REQUIRE(rt.phase == TaskPhase::Running,
               "checkpoint commit for a task that is not running");
  WIRE_CHECK(durable_exec_seconds >= rt.ckpt_durable_exec,
             "checkpoint commits must cover monotone progress");
  rt.ckpt_durable_exec = durable_exec_seconds;
  if (store_ != nullptr) {
    store_->on_checkpoint_committed(task, durable_exec_seconds);
  }
}

void FrameworkMaster::stage_kill_progress(TaskId task,
                                          double progress_exec_seconds) {
  mutable_runtime(task).ckpt_progress_exec = progress_exec_seconds;
}

void FrameworkMaster::on_transfer_in_done(TaskId task, SimTime now) {
  TaskRuntime& rt = mutable_runtime(task);
  WIRE_REQUIRE(rt.phase == TaskPhase::Running, "transfer_in_done on non-running task");
  rt.transfer_in_time = now - rt.occupancy_start;
  rt.exec_start = now;
  if (store_ != nullptr) {
    store_->on_transfer_in_done(task, rt.transfer_in_time, now);
  }
}

void FrameworkMaster::on_exec_done(TaskId task, SimTime now,
                                   double pure_exec_seconds) {
  TaskRuntime& rt = mutable_runtime(task);
  WIRE_REQUIRE(rt.phase == TaskPhase::Running, "exec_done on non-running task");
  WIRE_CHECK(rt.exec_start >= 0.0, "exec_done before transfer_in_done");
  // Wall time; on_complete needs it to place the output transfer. The pure
  // (stall-free) time replaces it in the completed observation there.
  rt.exec_time = now - rt.exec_start;
  rt.ckpt_pure_exec = pure_exec_seconds;
}

std::vector<TaskId> FrameworkMaster::on_complete(TaskId task, SimTime now) {
  TaskRuntime& rt = mutable_runtime(task);
  WIRE_REQUIRE(rt.phase == TaskPhase::Running, "complete on non-running task");
  WIRE_CHECK(rt.exec_time >= 0.0, "complete before exec_done");
  rt.transfer_out_time = now - rt.exec_start - rt.exec_time;
  if (rt.ckpt_pure_exec >= 0.0) {
    // Scheduled checkpointing stalls execution during writes: observations
    // (and the predictor's runtime harvest) must see the pure execution
    // time, not the stall-stretched wall interval.
    rt.exec_time = rt.ckpt_pure_exec;
  }
  rt.phase = TaskPhase::Completed;
  rt.completed_at = now;
  busy_slot_seconds_ += now - rt.occupancy_start;
  ++completed_;
  release_memory(rt, now);
  if (rt.true_peak_mem_mb >= 0.0) {
    mem_used_mb_seconds_ += rt.true_peak_mem_mb * (now - rt.occupancy_start);
  }

  auto it = slots_.find(rt.instance);
  WIRE_CHECK(it != slots_.end(), "completed task on unknown instance");
  it->second[rt.slot] = dag::kInvalidTask;
  // rt.instance is kept: the kickstart record names the hosting instance.
  if (store_ != nullptr) {
    store_->on_task_completed(task, rt.exec_time,
                              std::max(0.0, rt.transfer_in_time) +
                                  std::max(0.0, rt.transfer_out_time),
                              rt.true_peak_mem_mb);
  }

  std::vector<TaskId> newly_ready;
  for (TaskId succ : workflow_->successors(task)) {
    TaskRuntime& srt = mutable_runtime(succ);
    WIRE_CHECK(srt.remaining_preds > 0, "predecessor count underflow");
    if (--srt.remaining_preds == 0) {
      enqueue_ready(succ, now);
      newly_ready.push_back(succ);
    }
  }
  return newly_ready;
}

void FrameworkMaster::salvage_on_kill(TaskRuntime& rt, SimTime now,
                                      bool allow_legacy_salvage) {
  // Execution progress of the dying attempt: the engine stages the true
  // value when checkpoint stalls make wall time an overstatement; a kill
  // during the output transfer finds the finished exec time; otherwise wall
  // time since exec_start is exact.
  double progress = 0.0;
  if (rt.ckpt_progress_exec >= 0.0) {
    progress = rt.ckpt_progress_exec;
  } else if (rt.exec_time >= 0.0) {
    progress = rt.exec_time;
  } else if (rt.exec_start >= 0.0) {
    progress = now - rt.exec_start;
  }
  const double salvaged_before = rt.salvaged_exec;
  if (scheduled_checkpoints_) {
    // Every kill kind recovers the attempt's committed checkpoint — that is
    // the point of writing one (an upgrade over the legacy model, where a
    // crashed process was assumed to die at an unknown point with nothing
    // durable on disk).
    rt.salvaged_exec += rt.ckpt_durable_exec;
  } else if (allow_legacy_salvage && checkpoint_fraction_ > 0.0 &&
             rt.exec_start >= 0.0) {
    rt.salvaged_exec = std::max(
        rt.salvaged_exec, checkpoint_fraction_ * (now - rt.exec_start));
  }
  lost_work_seconds_ +=
      std::max(0.0, progress - (rt.salvaged_exec - salvaged_before));
  rt.ckpt_durable_exec = 0.0;
  rt.ckpt_progress_exec = -1.0;
  rt.ckpt_pure_exec = -1.0;
}

std::vector<TaskId> FrameworkMaster::resubmit_tasks_on(InstanceId instance,
                                                       SimTime now) {
  std::vector<TaskId> killed = tasks_on(instance);
  auto it = slots_.find(instance);
  if (it != slots_.end()) {
    std::fill(it->second.begin(), it->second.end(), dag::kInvalidTask);
  }
  for (TaskId task : killed) {
    TaskRuntime& rt = mutable_runtime(task);
    WIRE_CHECK(rt.phase == TaskPhase::Running, "killed task was not running");
    wasted_slot_seconds_ += now - rt.occupancy_start;
    release_memory(rt, now);
    ++restarts_;
    salvage_on_kill(rt, now, /*allow_legacy_salvage=*/true);
    rt.exec_time = -1.0;
    enqueue_ready(task, now);
  }
  return killed;
}

std::uint32_t FrameworkMaster::on_task_failed(TaskId task, SimTime now) {
  TaskRuntime& rt = mutable_runtime(task);
  WIRE_REQUIRE(rt.phase == TaskPhase::Running, "fault on non-running task");
  auto it = slots_.find(rt.instance);
  WIRE_CHECK(it != slots_.end(), "faulted task on unknown instance");
  WIRE_CHECK(it->second[rt.slot] == task, "faulted task not in its slot");
  it->second[rt.slot] = dag::kInvalidTask;

  const double elapsed = now - rt.occupancy_start;
  wasted_slot_seconds_ += elapsed;
  release_memory(rt, now);
  ++task_faults_;
  ++rt.failed_attempts;
  rt.last_failed_elapsed = elapsed;
  // Under the legacy fraction model a transient failure loses the attempt's
  // progress outright (the process died at an unknown point, nothing durable
  // exists); scheduled checkpointing recovers the committed write.
  salvage_on_kill(rt, now, /*allow_legacy_salvage=*/false);
  rt.phase = TaskPhase::Pending;
  rt.ready_at = -1.0;
  rt.occupancy_start = -1.0;
  rt.exec_start = -1.0;
  rt.transfer_in_time = -1.0;
  rt.exec_time = -1.0;
  rt.instance = kInvalidInstance;
  if (store_ != nullptr) {
    store_->on_task_failed(task, rt.attempts, rt.failed_attempts, elapsed);
  }
  return rt.failed_attempts;
}

std::uint32_t FrameworkMaster::on_task_oom(TaskId task, SimTime now) {
  TaskRuntime& rt = mutable_runtime(task);
  WIRE_REQUIRE(rt.phase == TaskPhase::Running, "OOM on non-running task");
  auto it = slots_.find(rt.instance);
  WIRE_CHECK(it != slots_.end(), "OOM task on unknown instance");
  WIRE_CHECK(it->second[rt.slot] == task, "OOM task not in its slot");
  it->second[rt.slot] = dag::kInvalidTask;

  const double elapsed = now - rt.occupancy_start;
  wasted_slot_seconds_ += elapsed;
  release_memory(rt, now);
  ++oom_kills_;
  ++rt.oom_attempts;
  // Unlike a transient fault, failed_attempts/last_failed_elapsed stay
  // untouched: an OOM kill is a sizing error, and the exec-time failure
  // harvest must not see it as a runtime observation.
  salvage_on_kill(rt, now, /*allow_legacy_salvage=*/false);
  rt.phase = TaskPhase::Pending;
  rt.ready_at = -1.0;
  rt.occupancy_start = -1.0;
  rt.exec_start = -1.0;
  rt.transfer_in_time = -1.0;
  rt.exec_time = -1.0;
  rt.instance = kInvalidInstance;
  if (store_ != nullptr) {
    store_->on_task_oom(task, rt.attempts, rt.oom_attempts);
  }
  return rt.oom_attempts;
}

void FrameworkMaster::requeue_failed(TaskId task, SimTime now) {
  TaskRuntime& rt = mutable_runtime(task);
  WIRE_REQUIRE(rt.phase == TaskPhase::Pending &&
                   (rt.failed_attempts > 0 || rt.oom_attempts > 0) &&
                   !rt.quarantined,
               "requeue_failed on a task that is not awaiting retry");
  WIRE_CHECK(rt.remaining_preds == 0, "retrying task has open predecessors");
  enqueue_ready(task, now);
}

std::vector<TaskId> FrameworkMaster::quarantine(TaskId task) {
  std::vector<TaskId> poisoned;
  std::vector<TaskId> stack{task};
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    TaskRuntime& rt = mutable_runtime(t);
    if (rt.quarantined) continue;  // reachable along multiple paths
    WIRE_CHECK(rt.phase == TaskPhase::Pending,
               "quarantine of a task that is not blocked");
    rt.quarantined = true;
    ++quarantined_;
    poisoned.push_back(t);
    for (TaskId succ : workflow_->successors(t)) stack.push_back(succ);
  }
  return poisoned;
}

void FrameworkMaster::fill_observations(
    SimTime now, std::vector<TaskObservation>& out) const {
  out.assign(runtimes_.size(), TaskObservation{});
  for (std::size_t i = 0; i < runtimes_.size(); ++i) {
    const TaskRuntime& rt = runtimes_[i];
    TaskObservation& obs = out[i];
    obs.phase = rt.phase;
    obs.input_mb = workflow_->task(static_cast<TaskId>(i)).input_mb;
    obs.attempts = rt.attempts;
    obs.failed_attempts = rt.failed_attempts;
    obs.last_failed_elapsed = rt.last_failed_elapsed;
    obs.oom_attempts = rt.oom_attempts;
    switch (rt.phase) {
      case TaskPhase::Pending:
        break;
      case TaskPhase::Ready:
        obs.ready_since = rt.ready_at;
        break;
      case TaskPhase::Running:
        obs.ready_since = rt.ready_at;
        obs.occupancy_start = rt.occupancy_start;
        obs.elapsed = now - rt.occupancy_start;
        obs.elapsed_exec = rt.exec_start >= 0.0 ? now - rt.exec_start : 0.0;
        obs.transfer_in_time = rt.transfer_in_time;
        obs.instance = rt.instance;
        obs.mem_reservation_mb = rt.mem_reservation_mb;
        obs.checkpointed_exec = rt.ckpt_durable_exec;
        break;
      case TaskPhase::Completed:
        obs.exec_time = rt.exec_time;
        obs.transfer_time =
            std::max(0.0, rt.transfer_in_time) +
            std::max(0.0, rt.transfer_out_time);
        obs.peak_mem_mb = rt.true_peak_mem_mb;
        break;
    }
  }
}

}  // namespace wire::sim
