// Instance pool lifecycle and billing — the simulated IaaS provider.
//
// Models the ExoGENI-style contract WIRE programs against: instance requests
// come up after the provisioning lag; each ready instance is billed per
// *started* charging unit from boot completion; terminating mid-unit forfeits
// the remainder of the paid unit (which is why the steering policy prefers
// draining instances exactly at their charge boundary).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/config.h"
#include "sim/monitor.h"

namespace wire::sim {

/// Lifecycle state of a simulated instance.
enum class InstanceState : std::uint8_t {
  Provisioning,
  Ready,
  Terminated,
};

struct Instance {
  InstanceId id = kInvalidInstance;
  InstanceState state = InstanceState::Provisioning;
  SimTime requested_at = 0.0;
  SimTime ready_at = 0.0;      // boot completion == charge start
  SimTime terminated_at = -1.0;
  /// Scheduled drain time (charge boundary); negative if not draining.
  SimTime drain_at = -1.0;
  /// Fault injection: scheduled crash/revocation time; negative if this
  /// instance never crashes.
  SimTime crash_at = -1.0;
  /// Time from which the revocation is announced to the controller
  /// (`crash_at - notice`, clamped to the ready time); negative if no crash.
  SimTime crash_notice_at = -1.0;
  /// Ground-truth speed factor (hidden from the controller).
  double speed_factor = 1.0;
};

/// Owns all instances of a run (live and terminated) and their billing.
class CloudPool {
 public:
  explicit CloudPool(const CloudConfig& config) : config_(config) {}

  /// Requests a new instance at `now`; it becomes Ready at now + lag.
  /// `speed_factor` comes from the variability model. Returns its id.
  /// The caller is responsible for respecting the site capacity (the driver
  /// clips requests so policies cannot exceed it). A non-negative
  /// `lag_override` replaces the configured provisioning lag (fault
  /// injection: straggler boots).
  InstanceId request(SimTime now, double speed_factor,
                     SimTime lag_override = -1.0);

  /// Requests an instance that is Ready immediately (initial pool at t = 0).
  InstanceId request_ready(SimTime now, double speed_factor);

  /// Transitions a Provisioning instance to Ready (driver calls this when the
  /// InstanceReady event fires).
  void mark_ready(InstanceId id, SimTime now);

  /// Terminates immediately. Any charging unit already started is still paid.
  void terminate(InstanceId id, SimTime now);

  /// Schedules the instance to drain at its next charge boundary (>= now).
  /// Returns the drain time (the driver schedules an InstanceDrain event).
  SimTime schedule_drain(InstanceId id, SimTime now);

  /// Cancels a pending drain (e.g. the policy changed its mind on a later
  /// tick). No-op if the instance is not draining.
  void cancel_drain(InstanceId id);

  /// Fault injection: dooms a Ready instance to crash at `crash_at`, with the
  /// revocation announced from `notice_at` (<= crash_at) onward. The engine
  /// terminates it when the InstanceCrash event fires.
  void mark_doomed(InstanceId id, SimTime crash_at, SimTime notice_at);

  /// True when the instance's revocation has been announced (monitoring rows
  /// report it so policies stop counting the instance as stable capacity).
  bool revocation_announced(InstanceId id, SimTime now) const;

  const Instance& instance(InstanceId id) const;
  bool is_usable(InstanceId id, SimTime now) const;

  /// Ready, non-draining, non-terminated instances (dispatch targets), in id
  /// order.
  std::vector<InstanceId> dispatchable(SimTime now) const;

  /// All instances that are Provisioning or Ready (not terminated), in id
  /// order. Returns a copy: callers may terminate while iterating.
  std::vector<InstanceId> live() const { return live_ids_; }

  /// Count of live instances (Provisioning + Ready) — what site capacity
  /// constrains.
  std::uint32_t live_count() const {
    return static_cast<std::uint32_t>(live_ids_.size());
  }

  std::uint32_t peak_live() const { return peak_live_; }

  /// Remaining paid time in the current unit: u - ((now - ready_at) mod u).
  /// Requires a Ready instance and now >= ready_at.
  SimTime time_to_next_charge(InstanceId id, SimTime now) const;

  /// Charging units consumed by one instance as of `end` (its termination
  /// time if terminated earlier). Partial units round up; a Ready instance
  /// always pays at least one unit. Provisioning time is not billed.
  double charged_units(InstanceId id, SimTime end) const;

  /// Total charging units across all instances as of `end`.
  double total_charged_units(SimTime end) const;

  /// Total seconds instances spent Ready (alive) as of `end` — the
  /// denominator for utilization metrics.
  double total_ready_seconds(SimTime end) const;

  std::size_t instance_count() const { return instances_.size(); }
  const std::vector<Instance>& instances() const { return instances_; }

 private:
  Instance& mutable_instance(InstanceId id);

  CloudConfig config_;
  std::vector<Instance> instances_;
  /// Ids of non-terminated instances, kept sorted (ids are assigned in
  /// increasing order; terminate() erases in place). Makes live()/live_count()
  /// and dispatchable() O(live pool) instead of O(instances ever created) —
  /// the difference matters once long ensemble runs accumulate thousands of
  /// retired instances per tenant.
  std::vector<InstanceId> live_ids_;
  std::uint32_t peak_live_ = 0;
};

}  // namespace wire::sim
