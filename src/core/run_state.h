// Controller-side run state maintained across MAPE iterations.
//
// The lookahead simulator needs the incomplete-predecessor count of every
// task to project firings over the next interval. Re-deriving those counts
// from snapshot phases costs O(V + E) per tick; this class keeps them
// current in O(changes) by consuming the snapshot's delta journal — each
// completion decrements its successors once. Hand-built snapshots (no exact
// journal) and the first snapshot of a run fall back to a full rebuild, so a
// RunState attached mid-run or fed by tests behaves exactly like the
// from-scratch derivation.
//
// This is pure controller bookkeeping over controller-visible data: every
// count is derivable from any one snapshot, so no ground truth leaks.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/workflow.h"
#include "sim/monitor.h"
#include "util/check.h"

namespace wire::core {

class RunState {
 public:
  /// Detaches from any previous run; the next update() rebuilds from its
  /// snapshot regardless of journal exactness.
  void reset() {
    remaining_preds_.clear();
    completed_.clear();
    synced_ = false;
  }

  /// Brings the state up to date with `snapshot`: applies the delta journal
  /// when it is exact and this state has tracked every snapshot since the
  /// run's first (O(changes)); otherwise rebuilds from the task phases
  /// (O(V + E)). Idempotent under replay of the same snapshot.
  void update(const dag::Workflow& workflow,
              const sim::MonitorSnapshot& snapshot);

  /// Incomplete-predecessor count per task; valid after the first update().
  const std::vector<std::uint32_t>& remaining_preds() const {
    return remaining_preds_;
  }

  /// Mutable access for the incremental lookahead's speculative projection:
  /// the cache decrements counters as it fires tasks inside its event loop
  /// (recording an undo log) and restores every decrement before returning,
  /// replacing the O(V) copy per tick with O(projected firings). Requires
  /// ready(); callers must leave the counters exactly as found.
  std::vector<std::uint32_t>& speculative_preds() {
    WIRE_REQUIRE(synced_, "speculative access before first update");
    return remaining_preds_;
  }

  bool ready() const { return synced_; }

 private:
  void rebuild(const dag::Workflow& workflow,
               const sim::MonitorSnapshot& snapshot);
  void apply_delta(const dag::Workflow& workflow,
                   const sim::MonitorDelta& delta);

  std::vector<std::uint32_t> remaining_preds_;
  /// Completions already folded in (guards replayed journals).
  std::vector<char> completed_;
  bool synced_ = false;
};

}  // namespace wire::core
