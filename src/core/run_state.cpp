#include "core/run_state.h"

#include "util/check.h"

namespace wire::core {

using dag::TaskId;

void RunState::update(const dag::Workflow& workflow,
                      const sim::MonitorSnapshot& snapshot) {
  if (!synced_ || !snapshot.delta.exact) {
    rebuild(workflow, snapshot);
    synced_ = true;
    return;
  }
  apply_delta(workflow, snapshot.delta);
}

void RunState::rebuild(const dag::Workflow& workflow,
                       const sim::MonitorSnapshot& snapshot) {
  WIRE_REQUIRE(snapshot.tasks.size() == workflow.task_count(),
               "snapshot does not match the workflow");
  remaining_preds_.assign(workflow.task_count(), 0);
  completed_.assign(workflow.task_count(), 0);
  for (const dag::TaskSpec& t : workflow.tasks()) {
    if (snapshot.tasks[t.id].phase == sim::TaskPhase::Completed) {
      completed_[t.id] = 1;
    }
    for (TaskId pred : workflow.predecessors(t.id)) {
      if (snapshot.tasks[pred].phase != sim::TaskPhase::Completed) {
        ++remaining_preds_[t.id];
      }
    }
  }
}

void RunState::apply_delta(const dag::Workflow& workflow,
                           const sim::MonitorDelta& delta) {
  for (TaskId t : delta.completed) {
    if (completed_[t]) continue;  // replayed journal
    completed_[t] = 1;
    for (TaskId succ : workflow.successors(t)) {
      WIRE_CHECK(remaining_preds_[succ] > 0, "predecessor count underflow");
      --remaining_preds_[succ];
    }
  }
}

}  // namespace wire::core
