// Shared event-loop skeleton of WIRE's internal workflow simulator.
//
// Both the from-scratch reference (simulate_interval, lookahead.cpp) and the
// incremental lookahead (lookahead_cache.cpp) instantiate this one template,
// differing only in where the occupancy estimates come from (direct
// predictor calls vs a revision-validated memo). Byte-identical steering
// decisions are the contract — every Table-I and ensemble baseline is diffed
// in hexfloat — and floating-point arithmetic does not reassociate: two
// independently written loops that are merely "mathematically equal" drift
// in ulps. One skeleton makes the arithmetic identical by construction; the
// occupancy sources are obliged to return bit-equal doubles, which the
// differential suite (tests/test_core_lookahead_incremental.cpp) enforces at
// every control tick under fault chaos.
#pragma once

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/lookahead.h"
#include "util/check.h"

namespace wire::core::detail {

struct BusySlot {
  sim::SimTime finish = 0.0;
  sim::SimTime attempt_start = 0.0;
  dag::TaskId task = dag::kInvalidTask;
  sim::InstanceId instance = sim::kInvalidInstance;
  /// True if the task was observed Running in the snapshot (as opposed to
  /// dispatched speculatively inside this lookahead).
  bool real = false;
};

struct LaterFinish {
  bool operator()(const BusySlot& a, const BusySlot& b) const {
    if (a.finish != b.finish) return a.finish > b.finish;
    return a.task > b.task;
  }
};

/// Optional capture of the projection's internal wavefront, consumed by the
/// incremental lookahead to classify the next tick's delta against what this
/// tick predicted.
struct WavefrontCapture {
  /// Tasks whose completion within the interval the projection predicted
  /// (observed-running and speculatively dispatched alike).
  std::vector<dag::TaskId>* projected_complete = nullptr;
  /// Every task that held a slot at any point of the projection.
  std::vector<dag::TaskId>* projected_running = nullptr;
};

/// Opt-in adaptive horizon cap: stop emitting queue-tail entries once the
/// steering decision can no longer change. The stopping rule mirrors
/// Algorithm 3's greedy packer online (same clamp, same retire/advance
/// arithmetic): its main-loop instance count after consuming a prefix is a
/// lower bound on the count after the full queue (the packer is an online
/// algorithm — its state after i entries is independent of later ones, and
/// the final leftover rule only ever adds one). Once that bound reaches the
/// binding pool ceiling, the planned size saturates at >= the ceiling for
/// prefix and full queue alike, so the clamped steering decision is
/// identical; only the unclamped demand signal (PoolCommand::desired_pool)
/// saturates instead of being exact, which is why the cap stays opt-in and
/// off for multi-tenant runs whose arbiter consumes that signal.
struct EmissionCap {
  bool enabled = false;
  /// The binding instance ceiling (snapshot.pool_cap, which already folds in
  /// the site capacity). Truncation starts once the mirrored packer's
  /// main-loop count reaches this.
  std::uint32_t target_pool = 0;
};

/// Online mirror of resize_pool's main loop (steering.cpp). Feeding it the
/// same clamped occupancies in the same order reproduces the same `p`.
class PackerMirror {
 public:
  PackerMirror(double charging_unit, std::uint32_t slots_per_instance)
      : charging_unit_(charging_unit), slots_(slots_per_instance) {
    slot_used_.reserve(slots_);
  }

  std::uint32_t count() const { return p_; }

  void add(double occupancy) {
    slot_used_.push_back(occupancy);
    while (slot_used_.size() == slots_) {
      const double t_min =
          *std::min_element(slot_used_.begin(), slot_used_.end());
      t_used_ += t_min;
      if (t_used_ >= charging_unit_) {
        ++p_;
        t_used_ = 0.0;
        slot_used_.clear();
      } else {
        std::vector<double> next;
        next.reserve(slot_used_.size());
        for (double t_c : slot_used_) {
          if (t_c != t_min) next.push_back(t_c - t_min);
        }
        slot_used_ = std::move(next);
      }
    }
  }

 private:
  double charging_unit_;
  std::uint32_t slots_;
  std::vector<double> slot_used_;
  double t_used_ = 0.0;
  std::uint32_t p_ = 0;
};

/// The §III-B2 projection loop. `remaining_occ(task)` estimates remaining
/// slot occupancy at snapshot.now; `fresh_occ(task)` estimates a
/// from-scratch re-run (transfer + execution) for tasks requeued off a
/// draining/revoking instance. `remaining_preds` is mutated while projecting
/// firings; with `undo_log` non-null every decrement records its task there
/// and the caller restores (one increment per entry) instead of copying the
/// whole vector per tick. `result` is cleared and filled in place so a
/// persistent caller (the incremental lookahead) reuses its buffer capacity
/// across ticks instead of reallocating the Q_task vector every interval.
template <typename RemainingOcc, typename FreshOcc>
void simulate_interval_impl(const dag::Workflow& workflow,
                            const sim::MonitorSnapshot& snapshot,
                            const sim::CloudConfig& config,
                            std::vector<std::uint32_t>& remaining_preds,
                            std::vector<dag::TaskId>* undo_log,
                            RemainingOcc&& remaining_occ, FreshOcc&& fresh_occ,
                            const EmissionCap& cap,
                            const WavefrontCapture& capture,
                            LookaheadResult& result) {
  result.upcoming.clear();
  result.restart_cost.clear();
  result.projected_completions = 0;
  result.truncated_tasks = 0;
  using dag::TaskId;
  using sim::InstanceId;
  using sim::SimTime;
  using sim::TaskPhase;

  WIRE_REQUIRE(snapshot.tasks.size() == workflow.task_count(),
               "snapshot does not match the workflow");
  const SimTime now = snapshot.now;
  const SimTime horizon = now + config.lag_seconds;

  std::priority_queue<BusySlot, std::vector<BusySlot>, LaterFinish> busy;
  // Free slots as a min-heap of instance ids (duplicates = multiple free
  // slots): pops the lowest id exactly like the multiset this replaces, at a
  // fraction of the allocation cost.
  std::priority_queue<InstanceId, std::vector<InstanceId>,
                      std::greater<InstanceId>>
      free_slots;
  // FIFO ready queue as vector + cursor (entries before `ready_head` are
  // consumed); the queue only grows, so indices stay stable.
  std::vector<TaskId> ready(snapshot.ready_queue.begin(),
                            snapshot.ready_queue.end());
  std::size_t ready_head = 0;
  // Tasks whose occupancy must be re-estimated from scratch (requeued off a
  // draining instance: their sunk progress is lost on restart).
  std::unordered_map<TaskId, double> occupancy_override;
  // Instances booting within the interval: (boot time, id).
  std::vector<std::pair<SimTime, InstanceId>> boots;

  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (inst.draining || inst.revoking) {
      // Gone within the interval — at its charge boundary (drain) or at the
      // provider's announced reclamation (revocation notice): its tasks are
      // stranded and restart from zero, so the lookahead charges their full
      // re-run occupancy rather than the sunk-progress remainder.
      for (TaskId task : inst.running_tasks) {
        // A crash that raced the refresh can leave a requeued task both in
        // the instance's stale running_tasks list and in
        // snapshot.ready_queue. It is only stranded if the snapshot still
        // observes it Running; otherwise it is already queued and pushing it
        // here would project it twice (double dispatch, phantom load, and a
        // predecessor-underflow trip when both copies complete). Engine
        // snapshots are internally consistent, so this is the defensive
        // contract for archived or hand-built snapshots.
        if (snapshot.tasks[task].phase != TaskPhase::Running) continue;
        occupancy_override[task] = fresh_occ(task);
        ready.push_back(task);
      }
      continue;
    }
    if (inst.provisioning) {
      if (inst.ready_at <= horizon) boots.emplace_back(inst.ready_at, inst.id);
      continue;
    }
    for (TaskId task : inst.running_tasks) {
      BusySlot slot;
      slot.task = task;
      slot.instance = inst.id;
      slot.attempt_start = snapshot.tasks[task].occupancy_start;
      slot.finish = now + remaining_occ(task);
      slot.real = true;
      busy.push(slot);
      if (capture.projected_running != nullptr) {
        capture.projected_running->push_back(task);
      }
    }
    for (std::uint32_t s = 0; s < inst.free_slots; ++s) {
      free_slots.push(inst.id);
    }
  }
  std::sort(boots.begin(), boots.end());

  const auto occupancy_of = [&](TaskId task) {
    if (!occupancy_override.empty()) {
      const auto it = occupancy_override.find(task);
      if (it != occupancy_override.end()) return it->second;
    }
    return remaining_occ(task);
  };

  const auto dispatch_at = [&](SimTime t) {
    while (ready_head < ready.size() && !free_slots.empty()) {
      const TaskId task = ready[ready_head++];
      const InstanceId inst = free_slots.top();
      free_slots.pop();
      BusySlot slot;
      slot.task = task;
      slot.instance = inst;
      slot.attempt_start = t;
      slot.finish = t + occupancy_of(task);
      busy.push(slot);
      if (capture.projected_running != nullptr) {
        capture.projected_running->push_back(task);
      }
    }
  };

  dispatch_at(now);

  // Observed-running tasks whose completion within the interval is predicted
  // but not yet observed. Their successors fire (that is the point of the
  // workflow simulator), but their slot is NOT released to the projected
  // ready queue and they stay in Q_task: the completion is speculative, the
  // predictions are conservative minimums, and handing the slot to queued
  // work would hide real queue pressure from the pool sizing.
  std::vector<TaskId> speculative_completions;
  std::size_t boot_cursor = 0;
  for (;;) {
    const SimTime next_finish =
        busy.empty() ? std::numeric_limits<SimTime>::infinity()
                     : busy.top().finish;
    const SimTime next_boot = boot_cursor < boots.size()
                                  ? boots[boot_cursor].first
                                  : std::numeric_limits<SimTime>::infinity();
    const SimTime next_event = std::min(next_finish, next_boot);
    if (next_event > horizon) break;

    if (next_boot <= next_finish) {
      const InstanceId inst = boots[boot_cursor++].second;
      for (std::uint32_t s = 0; s < config.slots_per_instance; ++s) {
        free_slots.push(inst);
      }
      dispatch_at(next_boot);
      continue;
    }

    const BusySlot done = busy.top();
    busy.pop();
    ++result.projected_completions;
    if (capture.projected_complete != nullptr) {
      capture.projected_complete->push_back(done.task);
    }
    for (TaskId succ : workflow.successors(done.task)) {
      WIRE_CHECK(remaining_preds[succ] > 0, "predecessor underflow");
      if (undo_log != nullptr) undo_log->push_back(succ);
      if (--remaining_preds[succ] == 0) {
        ready.push_back(succ);
      }
    }
    if (done.real) {
      speculative_completions.push_back(done.task);
      continue;
    }
    free_slots.push(done.instance);
    dispatch_at(done.finish);
  }

  // Q_task: tasks on slots at the horizon (by projected completion), then the
  // projected ready queue in dispatch order.
  PackerMirror packer(config.charging_unit_seconds, config.slots_per_instance);
  result.upcoming.reserve(busy.size() + speculative_completions.size() +
                          (ready.size() - ready_head));
  std::vector<BusySlot> still_busy;
  still_busy.reserve(busy.size());
  while (!busy.empty()) {
    still_busy.push_back(busy.top());
    busy.pop();
  }
  for (const BusySlot& slot : still_busy) {
    const double occ = std::max(0.0, slot.finish - horizon);
    result.upcoming.push_back(UpcomingTask{occ, slot.task, /*on_slot=*/true});
    if (cap.enabled) {
      packer.add(std::max(occ, config.charging_unit_seconds));
    }
    auto [it, inserted] =
        result.restart_cost.try_emplace(slot.instance, 0.0);
    it->second = std::max(it->second, horizon - slot.attempt_start);
  }
  for (TaskId task : speculative_completions) {
    result.upcoming.push_back(UpcomingTask{0.0, task, /*on_slot=*/true});
    if (cap.enabled) packer.add(config.charging_unit_seconds);
  }
  // On-slot entries are never truncated (their restart costs are charged
  // above regardless); only the queue tail is.
  std::uint32_t remaining_ready =
      static_cast<std::uint32_t>(ready.size() - ready_head);
  for (std::size_t q = ready_head; q < ready.size(); ++q) {
    if (cap.enabled && packer.count() >= cap.target_pool) {
      result.truncated_tasks = remaining_ready;
      break;
    }
    const TaskId task = ready[q];
    const double occ = occupancy_of(task);
    result.upcoming.push_back(UpcomingTask{occ, task, /*on_slot=*/false});
    if (cap.enabled) packer.add(occ);
    --remaining_ready;
  }
}

}  // namespace wire::core::detail
