// Shared event-loop skeleton of WIRE's internal workflow simulator.
//
// Both the from-scratch reference (simulate_interval, lookahead.cpp) and the
// incremental lookahead (lookahead_cache.cpp) instantiate this one template,
// differing only in where the occupancy estimates come from (direct
// predictor calls vs a revision-validated memo). Byte-identical steering
// decisions are the contract — every Table-I and ensemble baseline is diffed
// in hexfloat — and floating-point arithmetic does not reassociate: two
// independently written loops that are merely "mathematically equal" drift
// in ulps. One skeleton makes the arithmetic identical by construction; the
// occupancy sources are obliged to return bit-equal doubles, which the
// differential suite (tests/test_core_lookahead_incremental.cpp) enforces at
// every control tick under fault chaos.
//
// The transient containers (busy-slot heap, free-slot heap, ready queue,
// emission buffers) live in a caller-provided PlanScratch arena — persistent
// callers reuse one arena across ticks (and, via the ensemble driver, across
// tenants) instead of reallocating per tick. The heaps are kept manually
// with std::push_heap/pop_heap on the arena's vectors; the standard defines
// std::priority_queue as exactly that, so replacing the queue objects the
// earlier revision used cannot change the pop order.
#pragma once

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "core/lookahead.h"
#include "core/plan_scratch.h"
#include "core/steering.h"
#include "util/check.h"

namespace wire::core::detail {

struct LaterFinish {
  bool operator()(const BusySlot& a, const BusySlot& b) const {
    if (a.finish != b.finish) return a.finish > b.finish;
    return a.task > b.task;
  }
};

/// Optional capture of the projection's internal wavefront, consumed by the
/// incremental lookahead to classify the next tick's delta against what this
/// tick predicted.
struct WavefrontCapture {
  /// Tasks whose completion within the interval the projection predicted
  /// (observed-running and speculatively dispatched alike).
  std::vector<dag::TaskId>* projected_complete = nullptr;
  /// Every task that held a slot at any point of the projection.
  std::vector<dag::TaskId>* projected_running = nullptr;
};

/// Opt-in adaptive horizon cap: stop emitting queue-tail entries once the
/// steering decision can no longer change. The stopping rule runs Algorithm
/// 3's greedy packer online (same clamp, same retire/advance arithmetic):
/// its main-loop instance count after consuming a prefix is a lower bound on
/// the count after the full queue (the packer is an online algorithm — its
/// state after i entries is independent of later ones, and the final
/// leftover rule only ever adds one). Once that bound reaches the binding
/// pool ceiling, the planned size saturates at >= the ceiling for prefix and
/// full queue alike, so the clamped steering decision is identical; only the
/// unclamped demand signal (PoolCommand::desired_pool) saturates instead of
/// being exact, which is why the cap stays opt-in and off for multi-tenant
/// runs whose arbiter consumes that signal.
struct EmissionCap {
  bool enabled = false;
  /// The binding instance ceiling (snapshot.pool_cap, which already folds in
  /// the site capacity). Truncation starts once the online packer's
  /// main-loop count reaches this.
  std::uint32_t target_pool = 0;
};

/// The §III-B2 projection loop. `remaining_occ(task)` estimates remaining
/// slot occupancy at snapshot.now; `fresh_occ(task)` estimates a
/// from-scratch re-run (transfer + execution) for tasks requeued off a
/// draining/revoking instance. `remaining_preds` is mutated while projecting
/// firings; with `undo_log` non-null every decrement records its task there
/// and the caller restores (one increment per entry) instead of copying the
/// whole vector per tick. `result` is cleared and filled in place so a
/// persistent caller (the incremental lookahead) reuses its buffer capacity
/// across ticks instead of reallocating the Q_task vector every interval.
///
/// `plan_capture` turns on the Plan stamping pass: Q_task emission also
/// fills result.stamps (deadline/start/packed-occupancy per entry, in the
/// same steering-ready order) and runs the one Alg3Packer over the clamped
/// occupancies to stamp result.planned_pool — the exact value resize_pool
/// would recompute from result.upcoming, bit-equal because it is the same
/// packer class fed the same doubles in the same order. The incremental
/// lookahead enables it only on quiet (kIncremental) ticks; steer() then
/// consumes the stamp instead of rebuilding Q_task's occupancy vector.
/// `mem_of(task)` predicts the memory reservation (MB) a projected dispatch
/// of `task` would book — consulted only when config.memory is enabled, and
/// always live (never memoized): the memory predictor's percentile sizing is
/// O(1) per call, so memoizing it would buy nothing and would entangle the
/// memory dimension with the occupancy memo's revision contract.
template <typename RemainingOcc, typename FreshOcc, typename MemOf>
void simulate_interval_impl(const dag::Workflow& workflow,
                            const sim::MonitorSnapshot& snapshot,
                            const sim::CloudConfig& config,
                            std::vector<std::uint32_t>& remaining_preds,
                            std::vector<dag::TaskId>* undo_log,
                            RemainingOcc&& remaining_occ, FreshOcc&& fresh_occ,
                            MemOf&& mem_of, const EmissionCap& cap,
                            const WavefrontCapture& capture,
                            PlanScratch& scratch, bool plan_capture,
                            LookaheadResult& result) {
  result.upcoming.clear();
  result.stamps.clear();
  result.restart_cost.clear();
  result.projected_completions = 0;
  result.truncated_tasks = 0;
  result.planned_pool = 0;
  result.plan_valid = false;
  using dag::TaskId;
  using sim::InstanceId;
  using sim::SimTime;
  using sim::TaskPhase;

  WIRE_REQUIRE(snapshot.tasks.size() == workflow.task_count(),
               "snapshot does not match the workflow");
  const SimTime now = snapshot.now;
  const SimTime horizon = now + config.lag_seconds;
  // Memory-on projections replace the free-slot heap with a per-instance
  // (slots, free memory) table mirroring the engine's ascending-id
  // first-fit admission scan; memory-off keeps the heap path untouched
  // (byte-identical to the pre-memory projection).
  const bool mem_on = config.memory.enabled();
  std::vector<ProjInstance>& mem_instances = scratch.mem_instances;
  mem_instances.clear();
  const auto mem_inst_of = [&](InstanceId id) -> ProjInstance& {
    const auto it = std::lower_bound(
        mem_instances.begin(), mem_instances.end(), id,
        [](const ProjInstance& p, InstanceId v) { return p.id < v; });
    WIRE_CHECK(it != mem_instances.end() && it->id == id,
               "projected instance vanished");
    return *it;
  };

  // Busy slots as a max-age heap ordered by LaterFinish (top = front,
  // earliest projected finish first).
  std::vector<BusySlot>& busy = scratch.busy;
  busy.clear();
  const auto busy_push = [&](const BusySlot& slot) {
    busy.push_back(slot);
    std::push_heap(busy.begin(), busy.end(), LaterFinish{});
  };
  const auto busy_pop = [&] {
    std::pop_heap(busy.begin(), busy.end(), LaterFinish{});
    busy.pop_back();
  };
  // Free slots as a min-heap of instance ids (duplicates = multiple free
  // slots): pops the lowest id exactly like the multiset this replaces, at a
  // fraction of the allocation cost.
  std::vector<InstanceId>& free_slots = scratch.free_slots;
  free_slots.clear();
  const auto free_push = [&](InstanceId inst) {
    free_slots.push_back(inst);
    std::push_heap(free_slots.begin(), free_slots.end(),
                   std::greater<InstanceId>{});
  };
  const auto free_pop = [&] {
    std::pop_heap(free_slots.begin(), free_slots.end(),
                  std::greater<InstanceId>{});
    free_slots.pop_back();
  };
  // FIFO ready queue as vector + cursor (entries before `ready_head` are
  // consumed); the queue only grows, so indices stay stable.
  std::vector<TaskId>& ready = scratch.ready;
  ready.assign(snapshot.ready_queue.begin(), snapshot.ready_queue.end());
  std::size_t ready_head = 0;
  // Tasks whose occupancy must be re-estimated from scratch (requeued off a
  // draining instance: their sunk progress is lost on restart).
  auto& occupancy_override = scratch.occupancy_override;
  occupancy_override.clear();
  // Instances booting within the interval: (boot time, id).
  auto& boots = scratch.boots;
  boots.clear();

  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (inst.draining || inst.revoking) {
      // Gone within the interval — at its charge boundary (drain) or at the
      // provider's announced reclamation (revocation notice): its tasks are
      // stranded and restart from zero, so the lookahead charges their full
      // re-run occupancy rather than the sunk-progress remainder.
      for (TaskId task : inst.running_tasks) {
        // A crash that raced the refresh can leave a requeued task both in
        // the instance's stale running_tasks list and in
        // snapshot.ready_queue. It is only stranded if the snapshot still
        // observes it Running; otherwise it is already queued and pushing it
        // here would project it twice (double dispatch, phantom load, and a
        // predecessor-underflow trip when both copies complete). Engine
        // snapshots are internally consistent, so this is the defensive
        // contract for archived or hand-built snapshots.
        if (snapshot.tasks[task].phase != TaskPhase::Running) continue;
        occupancy_override[task] = fresh_occ(task);
        ready.push_back(task);
      }
      continue;
    }
    if (inst.provisioning) {
      if (inst.ready_at <= horizon) boots.emplace_back(inst.ready_at, inst.id);
      continue;
    }
    double booked_mem = 0.0;
    for (TaskId task : inst.running_tasks) {
      BusySlot slot;
      slot.task = task;
      slot.instance = inst.id;
      slot.attempt_start = snapshot.tasks[task].occupancy_start;
      slot.finish = now + remaining_occ(task);
      slot.real = true;
      if (mem_on) {
        // An in-flight attempt's reservation is observable, not a
        // projection: the monitor reports what the dispatcher booked.
        slot.mem_mb = std::max(0.0, snapshot.tasks[task].mem_reservation_mb);
        booked_mem += slot.mem_mb;
      }
      busy_push(slot);
      if (capture.projected_running != nullptr) {
        capture.projected_running->push_back(task);
      }
    }
    if (mem_on) {
      mem_instances.push_back(
          ProjInstance{inst.id, inst.free_slots,
                       config.memory.instance_mem_mb - booked_mem});
    } else {
      for (std::uint32_t s = 0; s < inst.free_slots; ++s) {
        free_push(inst.id);
      }
    }
  }
  std::sort(boots.begin(), boots.end());
  if (mem_on) {
    std::sort(mem_instances.begin(), mem_instances.end(),
              [](const ProjInstance& a, const ProjInstance& b) {
                return a.id < b.id;
              });
  }

  const auto occupancy_of = [&](TaskId task) {
    if (!occupancy_override.empty()) {
      const auto it = occupancy_override.find(task);
      if (it != occupancy_override.end()) return it->second;
    }
    return remaining_occ(task);
  };

  const auto dispatch_at = [&](SimTime t) {
    if (mem_on) {
      // Mirror of JobEngine's memory-aware admission: head-of-line FIFO —
      // the ascending-id scan takes the first instance with both a free
      // slot and enough free memory for the head task's reservation, and a
      // head that fits nowhere blocks the whole queue (no backfilling, in
      // the engine and here alike).
      while (ready_head < ready.size()) {
        const TaskId task = ready[ready_head];
        const double mem = mem_of(task);
        ProjInstance* target = nullptr;
        for (ProjInstance& pi : mem_instances) {
          if (pi.free_slots > 0 && pi.free_mem + 1e-9 >= mem) {
            target = &pi;
            break;
          }
        }
        if (target == nullptr) return;
        ++ready_head;
        --target->free_slots;
        target->free_mem -= mem;
        BusySlot slot;
        slot.task = task;
        slot.instance = target->id;
        slot.attempt_start = t;
        slot.finish = t + occupancy_of(task);
        slot.mem_mb = mem;
        busy_push(slot);
        if (capture.projected_running != nullptr) {
          capture.projected_running->push_back(task);
        }
      }
      return;
    }
    while (ready_head < ready.size() && !free_slots.empty()) {
      const TaskId task = ready[ready_head++];
      const InstanceId inst = free_slots.front();
      free_pop();
      BusySlot slot;
      slot.task = task;
      slot.instance = inst;
      slot.attempt_start = t;
      slot.finish = t + occupancy_of(task);
      busy_push(slot);
      if (capture.projected_running != nullptr) {
        capture.projected_running->push_back(task);
      }
    }
  };

  dispatch_at(now);

  // Observed-running tasks whose completion within the interval is predicted
  // but not yet observed. Their successors fire (that is the point of the
  // workflow simulator), but their slot is NOT released to the projected
  // ready queue and they stay in Q_task: the completion is speculative, the
  // predictions are conservative minimums, and handing the slot to queued
  // work would hide real queue pressure from the pool sizing. The full slot
  // record is kept (not just the task id) so the Plan stamps below can carry
  // the projected deadline and attempt start.
  std::vector<BusySlot>& speculative = scratch.speculative;
  speculative.clear();
  std::size_t boot_cursor = 0;
  for (;;) {
    const SimTime next_finish = busy.empty()
                                    ? std::numeric_limits<SimTime>::infinity()
                                    : busy.front().finish;
    const SimTime next_boot = boot_cursor < boots.size()
                                  ? boots[boot_cursor].first
                                  : std::numeric_limits<SimTime>::infinity();
    const SimTime next_event = std::min(next_finish, next_boot);
    if (next_event > horizon) break;

    if (next_boot <= next_finish) {
      const InstanceId inst = boots[boot_cursor++].second;
      if (mem_on) {
        mem_instances.insert(
            std::lower_bound(
                mem_instances.begin(), mem_instances.end(), inst,
                [](const ProjInstance& p, InstanceId v) { return p.id < v; }),
            ProjInstance{inst, config.slots_per_instance,
                         config.memory.instance_mem_mb});
      } else {
        for (std::uint32_t s = 0; s < config.slots_per_instance; ++s) {
          free_push(inst);
        }
      }
      dispatch_at(next_boot);
      continue;
    }

    const BusySlot done = busy.front();
    busy_pop();
    ++result.projected_completions;
    if (capture.projected_complete != nullptr) {
      capture.projected_complete->push_back(done.task);
    }
    for (TaskId succ : workflow.successors(done.task)) {
      WIRE_CHECK(remaining_preds[succ] > 0, "predecessor underflow");
      if (undo_log != nullptr) undo_log->push_back(succ);
      if (--remaining_preds[succ] == 0) {
        ready.push_back(succ);
      }
    }
    if (done.real) {
      speculative.push_back(done);
      continue;
    }
    if (mem_on) {
      ProjInstance& pi = mem_inst_of(done.instance);
      ++pi.free_slots;
      pi.free_mem += done.mem_mb;
    } else {
      free_push(done.instance);
    }
    dispatch_at(done.finish);
  }

  // Q_task: tasks on slots at the horizon (by projected completion), then the
  // projected ready queue in dispatch order. One Alg3Packer serves both the
  // adaptive cap's stopping rule and the Plan stamp; they are fed the same
  // steering-clamped occupancies resize_pool would see.
  const bool pack = cap.enabled || plan_capture;
  Alg3Packer packer(config.charging_unit_seconds, config.slots_per_instance,
                    config.restart_cost_fraction,
                    mem_on ? config.memory.instance_mem_mb : 0.0);
  result.upcoming.reserve(busy.size() + speculative.size() +
                          (ready.size() - ready_head));
  if (plan_capture) result.stamps.reserve(result.upcoming.capacity());
  std::vector<BusySlot>& still_busy = scratch.still_busy;
  still_busy.clear();
  while (!busy.empty()) {
    still_busy.push_back(busy.front());
    busy_pop();
  }
  for (const BusySlot& slot : still_busy) {
    const double occ = std::max(0.0, slot.finish - horizon);
    result.upcoming.push_back(
        UpcomingTask{occ, slot.task, /*on_slot=*/true, slot.mem_mb});
    if (pack) {
      packer.add(std::max(occ, config.charging_unit_seconds), slot.mem_mb);
    }
    if (plan_capture) {
      result.stamps.push_back(
          WavefrontStamp{slot.finish, slot.attempt_start,
                         std::max(occ, config.charging_unit_seconds),
                         slot.instance});
    }
    auto [it, inserted] = result.restart_cost.try_emplace(slot.instance, 0.0);
    it->second = std::max(it->second, horizon - slot.attempt_start);
  }
  for (const BusySlot& done : speculative) {
    result.upcoming.push_back(
        UpcomingTask{0.0, done.task, /*on_slot=*/true, done.mem_mb});
    if (pack) packer.add(config.charging_unit_seconds, done.mem_mb);
    if (plan_capture) {
      // deadline <= horizon distinguishes a speculatively completed slot
      // from a still-busy one (whose finish is strictly past the horizon):
      // only the latter carry restart cost.
      result.stamps.push_back(WavefrontStamp{done.finish, done.attempt_start,
                                             config.charging_unit_seconds,
                                             done.instance});
    }
  }
  // On-slot entries are never truncated (their restart costs are charged
  // above regardless); only the queue tail is.
  std::uint32_t remaining_ready =
      static_cast<std::uint32_t>(ready.size() - ready_head);
  for (std::size_t q = ready_head; q < ready.size(); ++q) {
    if (cap.enabled && packer.count() >= cap.target_pool) {
      result.truncated_tasks = remaining_ready;
      break;
    }
    const TaskId task = ready[q];
    const double occ = occupancy_of(task);
    const double mem = mem_on ? mem_of(task) : 0.0;
    result.upcoming.push_back(UpcomingTask{occ, task, /*on_slot=*/false, mem});
    if (pack) packer.add(occ, mem);
    if (plan_capture) {
      result.stamps.push_back(
          WavefrontStamp{-1.0, -1.0, occ, sim::kInvalidInstance});
    }
    --remaining_ready;
  }
  if (plan_capture) {
    result.plan_valid = true;
    if (!result.upcoming.empty()) result.planned_pool = packer.finish();
  }
}

}  // namespace wire::core::detail
