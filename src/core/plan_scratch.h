// Reusable scratch arena for the Plan phase (lookahead projection +
// steering), shared across control ticks — and, in multi-tenant runs, across
// tenant controllers.
//
// The projection event loop (lookahead_impl.h) and the steering policy
// (steering.cpp) together allocate roughly a dozen transient containers per
// control tick: the busy-slot heap, the free-slot heap, the projected ready
// queue, the Q_task emission buffers, the victim-candidate list. Each is
// empty again by the end of the tick, so a single controller can reuse one
// set of buffers forever — and because the ensemble driver only runs plan()
// at serial points of its windowed loop (control ticks are demand-relevant
// events, handled one at a time on the driver thread; see ensemble/driver.h),
// N tenant controllers can share ONE arena instead of paying N sets of
// allocation churn. Sharing requires that serialization: the arena holds no
// cross-tick state, but it is not thread-safe and two policies must never be
// mid-plan() on it concurrently. The one parallel context — per-shard
// dedicated-baseline replays in the sharded driver — uses one arena per
// shard instead (exp::sharded_policy_factory).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dag/workflow.h"
#include "sim/monitor.h"

namespace wire::core {

/// One occupied slot inside the projection event loop: the task, its host,
/// when the attempt started occupying the slot, and the projected finish.
struct BusySlot {
  sim::SimTime finish = 0.0;
  sim::SimTime attempt_start = 0.0;
  /// Memory reservation the slot's attempt holds (MB); 0 in memory-off
  /// projections. Released back to the hosting instance when a speculative
  /// (non-real) attempt completes.
  double mem_mb = 0.0;
  dag::TaskId task = dag::kInvalidTask;
  sim::InstanceId instance = sim::kInvalidInstance;
  /// True if the task was observed Running in the snapshot (as opposed to
  /// dispatched speculatively inside this lookahead).
  bool real = false;
};

/// Per-instance projected capacity for the memory-aware dispatch scan
/// (memory-on projections only). Kept sorted ascending by id: the engine's
/// memory-aware dispatch scans dispatchable instances in ascending-id order
/// for the first fit, and the projection mirrors that scan exactly.
struct ProjInstance {
  sim::InstanceId id = sim::kInvalidInstance;
  std::uint32_t free_slots = 0;
  double free_mem = 0.0;
};

/// Shrink-path victim candidate (Algorithm 2's release selection).
struct VictimCandidate {
  sim::InstanceId id = sim::kInvalidInstance;
  double restart_cost = 0.0;
};

struct PlanScratch {
  // --- projection event loop (detail::simulate_interval_impl) ---
  /// Busy slots as a heap ordered by detail::LaterFinish (top = front).
  std::vector<BusySlot> busy;
  /// Free slots as a min-heap of instance ids (duplicates = multiple slots).
  std::vector<sim::InstanceId> free_slots;
  /// FIFO projected ready queue (vector + cursor; only grows, indices stable).
  std::vector<dag::TaskId> ready;
  /// Tasks requeued off draining/revoking instances: occupancy re-estimated
  /// from scratch (their sunk progress is lost on restart).
  std::unordered_map<dag::TaskId, double> occupancy_override;
  /// Instances booting within the interval: (boot time, id).
  std::vector<std::pair<sim::SimTime, sim::InstanceId>> boots;
  /// Observed-running tasks whose in-interval completion is speculative.
  std::vector<BusySlot> speculative;
  /// Slots still occupied at the horizon, in projected-completion order.
  std::vector<BusySlot> still_busy;

  // --- incremental-lookahead per-tick capture (IncrementalLookahead) ---
  std::vector<dag::TaskId> projected_complete;
  std::vector<dag::TaskId> projected_running;
  /// Undo log for borrowed RunState predecessor counters.
  std::vector<dag::TaskId> undo;
  /// Locally seeded predecessor counters when no RunState is available.
  std::vector<std::uint32_t> local_preds;

  /// Memory-on projections: per-instance free slots + free memory, sorted
  /// ascending by id (empty and untouched in memory-off projections, which
  /// keep the cheaper free-slot heap).
  std::vector<ProjInstance> mem_instances;

  // --- steering (Algorithm 3 + victim selection, steering.cpp) ---
  /// Clamped Q_task occupancies for the from-scratch resize_pool path.
  std::vector<double> occupancy;
  /// Parallel projected reservations (memory-on steering only).
  std::vector<double> occupancy_mem;
  std::vector<VictimCandidate> candidates;

  /// Resident footprint in bytes (§IV-F overhead accounting). When the arena
  /// is shared across tenant controllers this is charged once per arena, not
  /// once per controller.
  std::size_t state_bytes() const {
    const auto vec = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
    return sizeof(*this) + vec(busy) + vec(free_slots) + vec(ready) +
           vec(boots) + vec(speculative) + vec(still_busy) +
           vec(mem_instances) + vec(projected_complete) +
           vec(projected_running) + vec(undo) + vec(local_preds) +
           vec(occupancy) + vec(occupancy_mem) + vec(candidates) +
           occupancy_override.size() * (sizeof(dag::TaskId) + sizeof(double));
  }
};

}  // namespace wire::core
