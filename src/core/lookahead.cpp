#include "core/lookahead.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <set>
#include <unordered_map>

#include "util/check.h"

namespace wire::core {

namespace {

using dag::TaskId;
using sim::InstanceId;
using sim::SimTime;
using sim::TaskPhase;

struct BusySlot {
  SimTime finish = 0.0;
  SimTime attempt_start = 0.0;
  TaskId task = dag::kInvalidTask;
  InstanceId instance = sim::kInvalidInstance;
  /// True if the task was observed Running in the snapshot (as opposed to
  /// dispatched speculatively inside this lookahead).
  bool real = false;
};

struct LaterFinish {
  bool operator()(const BusySlot& a, const BusySlot& b) const {
    if (a.finish != b.finish) return a.finish > b.finish;
    return a.task > b.task;
  }
};

}  // namespace

LookaheadResult simulate_interval(const dag::Workflow& workflow,
                                  const sim::MonitorSnapshot& snapshot,
                                  const predict::Estimator& predictor,
                                  const sim::CloudConfig& config,
                                  const RunState* state) {
  WIRE_REQUIRE(snapshot.tasks.size() == workflow.task_count(),
               "snapshot does not match the workflow");
  const SimTime now = snapshot.now;
  const SimTime horizon = now + config.lag_seconds;

  // Incomplete-predecessor counters: copied from the incrementally
  // maintained RunState when available, else seeded from the snapshot.
  std::vector<std::uint32_t> remaining_preds;
  if (state != nullptr && state->ready()) {
    remaining_preds = state->remaining_preds();
  } else {
    remaining_preds.assign(workflow.task_count(), 0);
    for (const dag::TaskSpec& t : workflow.tasks()) {
      for (TaskId pred : workflow.predecessors(t.id)) {
        if (snapshot.tasks[pred].phase != TaskPhase::Completed) {
          ++remaining_preds[t.id];
        }
      }
    }
  }

  std::priority_queue<BusySlot, std::vector<BusySlot>, LaterFinish> busy;
  std::multiset<InstanceId> free_slots;
  std::deque<TaskId> ready(snapshot.ready_queue.begin(),
                           snapshot.ready_queue.end());
  // Tasks whose occupancy must be re-estimated from scratch (requeued off a
  // draining instance: their sunk progress is lost on restart).
  std::unordered_map<TaskId, double> occupancy_override;
  // Instances booting within the interval: (boot time, id).
  std::vector<std::pair<SimTime, InstanceId>> boots;

  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (inst.draining || inst.revoking) {
      // Gone within the interval — at its charge boundary (drain) or at the
      // provider's announced reclamation (revocation notice): its tasks are
      // stranded and restart from zero, so the lookahead charges their full
      // re-run occupancy rather than the sunk-progress remainder.
      for (TaskId task : inst.running_tasks) {
        occupancy_override[task] =
            predictor.transfer_estimate() +
            predictor.estimate_exec(task, snapshot);
        ready.push_back(task);
      }
      continue;
    }
    if (inst.provisioning) {
      if (inst.ready_at <= horizon) boots.emplace_back(inst.ready_at, inst.id);
      continue;
    }
    for (TaskId task : inst.running_tasks) {
      BusySlot slot;
      slot.task = task;
      slot.instance = inst.id;
      slot.attempt_start = snapshot.tasks[task].occupancy_start;
      slot.finish =
          now + predictor.predict_remaining_occupancy(task, snapshot);
      slot.real = true;
      busy.push(slot);
    }
    for (std::uint32_t s = 0; s < inst.free_slots; ++s) {
      free_slots.insert(inst.id);
    }
  }
  std::sort(boots.begin(), boots.end());

  const auto occupancy_of = [&](TaskId task) {
    const auto it = occupancy_override.find(task);
    if (it != occupancy_override.end()) return it->second;
    return predictor.predict_remaining_occupancy(task, snapshot);
  };

  const auto dispatch_at = [&](SimTime t) {
    while (!ready.empty() && !free_slots.empty()) {
      const TaskId task = ready.front();
      ready.pop_front();
      const auto slot_it = free_slots.begin();
      const InstanceId inst = *slot_it;
      free_slots.erase(slot_it);
      BusySlot slot;
      slot.task = task;
      slot.instance = inst;
      slot.attempt_start = t;
      slot.finish = t + occupancy_of(task);
      busy.push(slot);
    }
  };

  dispatch_at(now);

  LookaheadResult result;
  // Observed-running tasks whose completion within the interval is predicted
  // but not yet observed. Their successors fire (that is the point of the
  // workflow simulator), but their slot is NOT released to the projected
  // ready queue and they stay in Q_task: the completion is speculative, the
  // predictions are conservative minimums, and handing the slot to queued
  // work would hide real queue pressure from the pool sizing.
  std::vector<TaskId> speculative_completions;
  std::size_t boot_cursor = 0;
  for (;;) {
    const SimTime next_finish =
        busy.empty() ? std::numeric_limits<SimTime>::infinity()
                     : busy.top().finish;
    const SimTime next_boot = boot_cursor < boots.size()
                                  ? boots[boot_cursor].first
                                  : std::numeric_limits<SimTime>::infinity();
    const SimTime next_event = std::min(next_finish, next_boot);
    if (next_event > horizon) break;

    if (next_boot <= next_finish) {
      const InstanceId inst = boots[boot_cursor++].second;
      for (std::uint32_t s = 0; s < config.slots_per_instance; ++s) {
        free_slots.insert(inst);
      }
      dispatch_at(next_boot);
      continue;
    }

    const BusySlot done = busy.top();
    busy.pop();
    ++result.projected_completions;
    for (TaskId succ : workflow.successors(done.task)) {
      WIRE_CHECK(remaining_preds[succ] > 0, "predecessor underflow");
      if (--remaining_preds[succ] == 0) {
        ready.push_back(succ);
      }
    }
    if (done.real) {
      speculative_completions.push_back(done.task);
      continue;
    }
    free_slots.insert(done.instance);
    dispatch_at(done.finish);
  }

  // Q_task: tasks on slots at the horizon (by projected completion), then the
  // projected ready queue in dispatch order.
  std::vector<BusySlot> still_busy;
  still_busy.reserve(busy.size());
  while (!busy.empty()) {
    still_busy.push_back(busy.top());
    busy.pop();
  }
  for (const BusySlot& slot : still_busy) {
    result.upcoming.push_back(UpcomingTask{
        slot.task, std::max(0.0, slot.finish - horizon), /*on_slot=*/true});
    auto [it, inserted] =
        result.restart_cost.try_emplace(slot.instance, 0.0);
    it->second = std::max(it->second, horizon - slot.attempt_start);
  }
  for (TaskId task : speculative_completions) {
    result.upcoming.push_back(UpcomingTask{task, 0.0, /*on_slot=*/true});
  }
  for (TaskId task : ready) {
    result.upcoming.push_back(
        UpcomingTask{task, occupancy_of(task), /*on_slot=*/false});
  }
  return result;
}

}  // namespace wire::core
