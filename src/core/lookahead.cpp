#include "core/lookahead.h"

#include "core/lookahead_impl.h"
#include "predict/memory_predictor.h"

namespace wire::core {

LookaheadResult simulate_interval(const dag::Workflow& workflow,
                                  const sim::MonitorSnapshot& snapshot,
                                  const predict::Estimator& predictor,
                                  const sim::CloudConfig& config,
                                  const RunState* state,
                                  PlanScratch* scratch,
                                  const predict::MemoryPredictor* memory) {
  using dag::TaskId;
  using sim::TaskPhase;

  // Incomplete-predecessor counters: copied from the incrementally
  // maintained RunState when available, else seeded from the snapshot.
  std::vector<std::uint32_t> remaining_preds;
  if (state != nullptr && state->ready()) {
    remaining_preds = state->remaining_preds();
  } else {
    remaining_preds.assign(workflow.task_count(), 0);
    for (const dag::TaskSpec& t : workflow.tasks()) {
      for (TaskId pred : workflow.predecessors(t.id)) {
        if (snapshot.tasks[pred].phase != TaskPhase::Completed) {
          ++remaining_preds[t.id];
        }
      }
    }
  }

  PlanScratch local_scratch;
  PlanScratch& s = scratch != nullptr ? *scratch : local_scratch;
  LookaheadResult result;
  detail::simulate_interval_impl(
      workflow, snapshot, config, remaining_preds, /*undo_log=*/nullptr,
      [&](TaskId task) {
        return predictor.predict_remaining_occupancy(task, snapshot);
      },
      [&](TaskId task) {
        return predictor.transfer_estimate() +
               predictor.estimate_exec(task, snapshot);
      },
      // Memory reservations are predicted live (never memoized) so the
      // incremental lookahead's memo contract is untouched by the memory
      // dimension; with no predictor the lambda is dead code (the impl only
      // calls it when config.memory is on).
      [&](TaskId task) {
        return memory != nullptr ? memory->predict_reservation(task, snapshot)
                                 : 0.0;
      },
      detail::EmissionCap{}, detail::WavefrontCapture{}, s,
      /*plan_capture=*/false, result);
  return result;
}

}  // namespace wire::core
