#include "core/controller.h"

#include <algorithm>
#include <cmath>

#include "core/steering.h"
#include "predict/oracle.h"
#include "util/check.h"

namespace wire::core {

WireController::WireController(const WireOptions& options)
    : options_(options), lookahead_(options.lookahead_cache) {
  lookahead_.set_scratch(options_.plan_scratch);
}

void WireController::on_run_start(const dag::Workflow& workflow,
                                  const sim::CloudConfig& config) {
  workflow_ = &workflow;
  config_ = config;
  selector_.reset();
  if (options_.oracle_estimator) {
    estimator_ = std::make_unique<predict::OracleEstimator>(
        workflow, config.variability.transfer_latency_seconds,
        config.variability.bandwidth_mb_per_s);
    online_ = nullptr;
  } else if (options_.history) {
    estimator_ =
        std::make_unique<predict::HistoryEstimator>(workflow,
                                                    *options_.history);
    online_ = nullptr;
  } else {
    // With the selector enabled, the initial arm's configuration IS the
    // predictor configuration — the arm set owns the knob from the first
    // tick (options_.predictor only seeds the selector-off path).
    if (options_.bandit.enabled()) {
      selector_ = std::make_unique<predict::BanditSelector>(options_.bandit);
    }
    auto online = std::make_unique<predict::TaskPredictor>(
        workflow, selector_ ? selector_->arm(selector_->current()).config
                            : options_.predictor);
    online_ = online.get();
    estimator_ = std::move(online);
  }
  lookahead_.set_adaptive_horizon(
      selector_ ? selector_->arm(selector_->current()).adaptive_horizon
                : options_.lookahead_cache.adaptive_horizon);
  // The memory predictor exists only when the run models memory at all; a
  // memory-off run keeps the pointer null so plan() pays nothing for the
  // second resource dimension (and stays byte-identical to pre-memory).
  memory_ = config.memory.enabled()
                ? std::make_unique<predict::MemoryPredictor>(
                      workflow, config.memory, config.slots_per_instance)
                : nullptr;
  run_state_.reset();
  lookahead_.reset(workflow);
  hazard_exposure_hours_ = 0.0;
  hazard_crashes_ = 0;
  hazard_pending_releases_ = 0;
  hazard_mark_ = 0.0;
  last_planned_pool_ = 0;
}

const predict::Estimator& WireController::estimator() const {
  WIRE_REQUIRE(estimator_ != nullptr, "no active run");
  return *estimator_;
}

const predict::TaskPredictor& WireController::predictor() const {
  WIRE_REQUIRE(online_ != nullptr,
               "no active run with the online predictor");
  return *online_;
}

sim::PoolCommand WireController::plan(const sim::MonitorSnapshot& snapshot) {
  WIRE_REQUIRE(workflow_ != nullptr, "plan before on_run_start");

  // Predictor selection: score the live arm on this interval's completions
  // BEFORE the harvest below ingests them, so |predicted - actual| is a
  // genuine out-of-sample regret (after observe() the predictor has already
  // absorbed the very samples it would be judged on). Arm switches land
  // between the regret read and the harvest: the new arm starts learning
  // from this interval's data under its own configuration.
  if (selector_) {
    double cost = 0.0;
    std::uint32_t scored = 0;
    if (snapshot.delta.exact) {
      for (dag::TaskId task : snapshot.delta.completed) {
        double predicted = 0.0;
        if (online_->counterfactual_exec(task, &predicted)) {
          cost += std::abs(predicted - snapshot.tasks[task].exec_time);
          ++scored;
        }
      }
    }
    if (selector_->tick(cost, scored)) {
      const predict::BanditArm& arm = selector_->arm(selector_->current());
      online_->reconfigure(arm.config);
      lookahead_.set_adaptive_horizon(arm.adaptive_horizon);
    }
  }

  // Monitor + Analyze: harvest the interval's data, refresh the models.
  estimator_->observe(snapshot);
  if (memory_) memory_->observe(snapshot);

  // Plan: project the upcoming load.
  LookaheadResult ablation_scratch;
  const LookaheadResult* lookahead = &ablation_scratch;
  AnalyzePath analyze_path = AnalyzePath::kFirstTick;
  if (options_.disable_lookahead) {
    // Ablation: no DAG projection — only the tasks active right now. With
    // the memory dimension on, entries still carry their reservations so
    // the memory-aware Algorithm 3 packs the same constraint the
    // dispatcher enforces.
    for (const sim::InstanceObservation& inst : snapshot.instances) {
      for (dag::TaskId task : inst.running_tasks) {
        ablation_scratch.upcoming.push_back(UpcomingTask{
            estimator_->predict_remaining_occupancy(task, snapshot), task,
            /*on_slot=*/true,
            memory_ ? memory_->predict_reservation(task, snapshot) : 0.0});
        auto [it, inserted] =
            ablation_scratch.restart_cost.try_emplace(inst.id, 0.0);
        it->second = std::max(it->second, snapshot.tasks[task].elapsed);
      }
    }
    for (dag::TaskId task : snapshot.ready_queue) {
      ablation_scratch.upcoming.push_back(UpcomingTask{
          estimator_->predict_remaining_occupancy(task, snapshot), task,
          /*on_slot=*/false,
          memory_ ? memory_->predict_reservation(task, snapshot) : 0.0});
    }
  } else {
    run_state_.update(*workflow_, snapshot);
    lookahead = &lookahead_.tick(*workflow_, snapshot, *estimator_, online_,
                                 config_, &run_state_, memory_.get());
    analyze_path = lookahead_.last_path();
  }

  // Crash-aware steering: refresh the controller-side hazard estimate from
  // what the monitoring surface shows — exposure from the live instance rows,
  // crashes as the removals the controller never ordered.
  double hazard_per_hour = 0.0;
  if (options_.crash_aware_steering) {
    double exposed = 0.0;
    for (const sim::InstanceObservation& inst : snapshot.instances) {
      if (!inst.provisioning) exposed += 1.0;
    }
    hazard_exposure_hours_ += exposed * (snapshot.now - hazard_mark_) / 3600.0;
    hazard_mark_ = snapshot.now;
    if (snapshot.delta.exact) {
      // Ordered releases (immediate kills, drains, boot cancels) surface as
      // removals in a later delta; match them first so only the provider's
      // own revocations count as crashes. A dropout tick's non-exact delta
      // is skipped — its removals coalesce into the next exact one.
      const std::uint64_t removed = snapshot.delta.instances_removed.size();
      const std::uint64_t ordered = std::min(hazard_pending_releases_, removed);
      hazard_crashes_ += removed - ordered;
      hazard_pending_releases_ -= ordered;
    }
    if (hazard_exposure_hours_ > 0.0) {
      hazard_per_hour =
          static_cast<double>(hazard_crashes_) / hazard_exposure_hours_;
    }
  }

  // Plan + Execute: steer the pool (on the lookahead's scratch arena, which
  // also covers the ablation path — its buffers are free between ticks).
  std::uint32_t planned = 0;
  sim::PoolCommand cmd = steer(*lookahead, snapshot, config_, &planned,
                               options_.reclaim_draining,
                               lookahead_.scratch().get(), hazard_per_hour);
  last_planned_pool_ = planned;
  if (options_.crash_aware_steering) {
    hazard_pending_releases_ += cmd.releases.size();
  }

  if (memory_ && options_.report_memory_demand) {
    // The projected footprint of the *concurrent wave* — the Q_task prefix
    // that would actually co-reside at the planned pool size (Q_task is
    // emitted in projected start order, so its first planned * slots entries
    // are the wavefront). Summing the whole queue instead over-claims badly
    // under demand-weighted arbitration: tasks that run serially behind the
    // wave never reserve memory at the same time, and bidding their sum
    // starves the other tenants for capacity this job cannot use (the
    // bench_ensemble memory-bid study measured 3.90x tight-provisioning
    // slowdown for the whole-queue signal vs 1.32x per-wave). Purely advisory
    // (the engine never acts on it); the ensemble arbiter converts it to an
    // instance-count bid.
    const std::size_t wave =
        std::min(lookahead->upcoming.size(),
                 static_cast<std::size_t>(planned) *
                     static_cast<std::size_t>(config_.slots_per_instance));
    double mem = 0.0;
    for (std::size_t i = 0; i < wave; ++i) {
      mem += lookahead->upcoming[i].mem_mb;
    }
    cmd.desired_mem_mb = mem;
  }

  if (trace_listener_) {
    MapeTrace trace;
    trace.now = snapshot.now;
    trace.upcoming_tasks = lookahead->upcoming.size();
    for (const UpcomingTask& t : lookahead->upcoming) {
      trace.upcoming_load_seconds += t.remaining_occupancy;
    }
    trace.planned_pool = planned;
    trace.grow = cmd.grow;
    trace.releases = static_cast<std::uint32_t>(cmd.releases.size());
    trace.analyze_path = analyze_path;
    trace.plan_stamped = lookahead->plan_valid;
    trace_listener_(trace);
  }
  return cmd;
}

double WireController::planned_burn_units(const sim::MonitorSnapshot& snapshot,
                                          double horizon) const {
  return core::planned_burn_units(snapshot, config_, last_planned_pool_,
                                  horizon);
}

std::size_t WireController::state_bytes() const {
  std::size_t bytes = sizeof(*this);
  if (estimator_) bytes += estimator_->state_bytes();
  if (memory_) bytes += memory_->state_bytes();
  if (selector_) bytes += selector_->state_bytes();
  // RunState: one counter plus one completion flag per task.
  bytes += run_state_.remaining_preds().capacity() *
           (sizeof(std::uint32_t) + sizeof(char));
  bytes += lookahead_.state_bytes();
  // The Plan scratch arena is charged here only when this controller owns
  // it; a shared (ensemble) arena is charged once by its owner, not once
  // per tenant.
  if (!options_.plan_scratch) bytes += lookahead_.scratch()->state_bytes();
  return bytes;
}

}  // namespace wire::core
