#include "core/steering.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wire::core {

std::uint32_t resize_pool(const std::vector<double>& upcoming,
                          double charging_unit,
                          std::uint32_t slots_per_instance,
                          double leftover_fraction) {
  WIRE_REQUIRE(charging_unit > 0.0, "charging unit must be positive");
  WIRE_REQUIRE(slots_per_instance > 0, "need at least one slot");
  if (upcoming.empty()) return 0;
  Alg3Packer packer(charging_unit, slots_per_instance, leftover_fraction);
  for (double occupancy : upcoming) packer.add(occupancy);
  return packer.finish();
}

std::uint32_t resize_pool(const std::vector<double>& upcoming,
                          const std::vector<double>& mem_mb,
                          double charging_unit,
                          std::uint32_t slots_per_instance,
                          double leftover_fraction, double instance_mem_mb) {
  WIRE_REQUIRE(charging_unit > 0.0, "charging unit must be positive");
  WIRE_REQUIRE(slots_per_instance > 0, "need at least one slot");
  WIRE_REQUIRE(mem_mb.size() == upcoming.size(),
               "reservation vector must parallel the occupancies");
  if (upcoming.empty()) return 0;
  Alg3Packer packer(charging_unit, slots_per_instance, leftover_fraction,
                    instance_mem_mb);
  for (std::size_t i = 0; i < upcoming.size(); ++i) {
    packer.add(upcoming[i], mem_mb[i]);
  }
  return packer.finish();
}

sim::PoolCommand steer(const LookaheadResult& lookahead,
                       const sim::MonitorSnapshot& snapshot,
                       const sim::CloudConfig& config,
                       std::uint32_t* planned_size,
                       bool reclaim_draining,
                       PlanScratch* scratch,
                       double hazard_per_hour) {
  sim::PoolCommand cmd;

  // §III-D: Algorithm 3 assumes Q_task is non-empty; with an empty upcoming
  // load it retains a minimal pool until the next control iteration (or the
  // workflow terminates).
  std::uint32_t planned = 0;
  if (lookahead.upcoming.empty()) {
    planned = snapshot.incomplete_tasks > 0 ? 1u : 0u;
  } else if (lookahead.plan_valid) {
    // Stamped wavefront (quiet tick): the Algorithm-3 size was packed inline
    // during Q_task emission by the same Alg3Packer this function would run,
    // fed the identically clamped occupancies in the identical order —
    // consuming it skips the rebuild below without a bit of drift.
    planned = lookahead.planned_pool;
  } else {
    PlanScratch local_scratch;
    PlanScratch& s = scratch != nullptr ? *scratch : local_scratch;
    std::vector<double>& occupancy = s.occupancy;
    occupancy.clear();
    occupancy.reserve(lookahead.upcoming.size());
    const bool mem_on = config.memory.enabled();
    std::vector<double>& mem = s.occupancy_mem;
    mem.clear();
    if (mem_on) mem.reserve(lookahead.upcoming.size());
    for (const UpcomingTask& t : lookahead.upcoming) {
      // A task projected to be on a slot at the interval start physically
      // owns that slot: Algorithm 3's greedy packing must not time-multiplex
      // it with other work below one charging unit, or the conservative
      // minimum predictions ("about to complete") would let the packer
      // compress the currently running set onto fewer instances than are
      // actually occupied — a stable under-provisioning fixpoint. Pinning
      // on-slot tasks at a full unit reproduces the §III-E growth behaviour
      // (the pool reaches N within one charging unit for the linear
      // workflows of Figs. 2-3).
      occupancy.push_back(t.on_slot
                              ? std::max(t.remaining_occupancy,
                                         config.charging_unit_seconds)
                              : t.remaining_occupancy);
      if (mem_on) mem.push_back(t.mem_mb);
    }
    planned = mem_on
                  ? resize_pool(occupancy, mem, config.charging_unit_seconds,
                                config.slots_per_instance,
                                config.restart_cost_fraction,
                                config.memory.instance_mem_mb)
                  : resize_pool(occupancy, config.charging_unit_seconds,
                                config.slots_per_instance,
                                config.restart_cost_fraction);
  }

  if (hazard_per_hour > 0.0 && planned > 0) {
    // Crash-aware steering: under an exponential hazard lambda, an instance
    // bought for a charging unit u delivers only (1 - e^{-lambda u}) /
    // (lambda u) of it in expectation before crashing. Inflating the planned
    // pool by the reciprocal makes the *expected delivered* capacity match
    // the packed demand instead of the nominal one. hazard 0 (the flag off,
    // or no crash observed and no prior) leaves the plan bit-identical.
    const double lambda_u =
        hazard_per_hour / 3600.0 * config.charging_unit_seconds;
    const double factor = lambda_u / (1.0 - std::exp(-lambda_u));
    planned = static_cast<std::uint32_t>(
        std::ceil(static_cast<double>(planned) * factor));
  }

  if (planned_size != nullptr) *planned_size = planned;

  // Multi-tenant runs impose an external pool ceiling (the site arbiter's
  // share). The unconstrained Algorithm-3 size stays the reported demand
  // signal; the command steers toward the clamped size, so capacity beyond
  // the share is neither requested (to be clipped) nor held (instances above
  // the ceiling drain at their charge boundaries once the share shrinks).
  cmd.desired_pool = planned;
  // pool_cap == 0 is a genuine zero share (growth blocked), distinct from
  // the kNoInstanceCap "no ceiling" sentinel. A zero share must not strand
  // the job: while work remains, keep one already-live instance rather than
  // draining the last capacity a growth-blocked tenant can never regrow.
  std::uint32_t p = snapshot.pool_cap != sim::kNoInstanceCap
                        ? std::min(planned, snapshot.pool_cap)
                        : planned;
  if (p == 0 && snapshot.incomplete_tasks > 0 && !snapshot.instances.empty()) {
    p = 1;
  }

  // The pool at the start of the next interval: live instances that are not
  // already draining (draining ones expire within this interval) and not
  // under a revocation notice (the provider reclaims those on its own
  // schedule — counting them as stable capacity would leave the next
  // interval short exactly when replacements take a full lag to boot).
  std::uint32_t m = 0;
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (!inst.draining && !inst.revoking) ++m;
  }

  if (p > m) {
    std::uint32_t deficit = p - m;
    if (reclaim_draining) {
      // Cancelling a drain restores capacity instantly and costs nothing
      // extra (the unit keeps running) — always preferable to a boot. A
      // revoking drain is not worth reclaiming: the provider kills it soon
      // regardless.
      for (const sim::InstanceObservation& inst : snapshot.instances) {
        if (deficit == 0) break;
        if (inst.draining && !inst.revoking) {
          cmd.cancel_drains.push_back(inst.id);
          --deficit;
        }
      }
    }
    cmd.grow = deficit;
    return cmd;
  }
  if (p >= m) return cmd;

  // Shrink: candidates are ready instances whose unit expires before the
  // next interval and whose restart cost is under the threshold.
  std::vector<VictimCandidate> local_candidates;
  std::vector<VictimCandidate>& candidates =
      scratch != nullptr ? scratch->candidates : local_candidates;
  candidates.clear();
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    // Revoking instances are excluded from `m`, so releasing one would
    // double-count the capacity loss; the provider reclaims it anyway.
    if (inst.provisioning || inst.draining || inst.revoking) continue;
    if (inst.time_to_next_charge > config.lag_seconds) continue;
    double cost = 0.0;
    const auto it = lookahead.restart_cost.find(inst.id);
    if (it != lookahead.restart_cost.end()) cost = it->second;
    // The lookahead only charges tasks projected to survive the interval,
    // but its occupancy predictions are conservative *minimums* ("about to
    // complete"). A task that has already sunk real time into this instance
    // would pay that cost again if the drain beats its actual completion, so
    // the release decision also respects the observed sunk cost at the drain
    // moment (elapsed so far + time to the charge boundary).
    if (config.checkpoint.enabled()) {
      // Scheduled checkpointing: a killed task restarts from its last
      // committed checkpoint, so the sunk cost at risk is the actual
      // unsalvaged progress — elapsed beyond the durable prefix — not a
      // blanket fraction of everything.
      for (dag::TaskId task : inst.running_tasks) {
        const sim::TaskObservation& obs = snapshot.tasks[task];
        cost = std::max(cost,
                        std::max(0.0, obs.elapsed + inst.time_to_next_charge -
                                          obs.checkpointed_exec));
      }
    } else {
      for (dag::TaskId task : inst.running_tasks) {
        cost = std::max(cost, snapshot.tasks[task].elapsed +
                                  inst.time_to_next_charge);
      }
      // Legacy fractional checkpointing salvages that fraction of a killed
      // task's progress, so only the remainder is genuinely at risk.
      cost *= 1.0 - config.checkpoint_fraction;
    }
    if (cost > config.restart_cost_fraction * config.charging_unit_seconds) {
      continue;
    }
    candidates.push_back(VictimCandidate{inst.id, cost});
  }
  // The comparator is a total order (instance ids are unique), so the victim
  // sequence is deterministic regardless of the standard library's sort
  // internals — a bare key comparison would leave equal-cost ties in an
  // implementation-defined order and silently break byte-identical replay.
  std::sort(candidates.begin(), candidates.end(),
            [](const VictimCandidate& a, const VictimCandidate& b) {
              if (a.restart_cost != b.restart_cost) {
                return a.restart_cost < b.restart_cost;
              }
              return a.id < b.id;
            });
  std::uint32_t remaining = m;
  for (const VictimCandidate& c : candidates) {
    if (remaining == p) break;
    cmd.releases.push_back(sim::Release{c.id, /*at_charge_boundary=*/true});
    --remaining;
  }
  return cmd;
}

double planned_burn_units(const sim::MonitorSnapshot& snapshot,
                          const sim::CloudConfig& config,
                          std::uint32_t target_pool, double horizon) {
  WIRE_REQUIRE(config.charging_unit_seconds > 0.0,
               "charging unit must be positive");
  WIRE_REQUIRE(horizon >= 0.0, "horizon must be non-negative");
  const double u = config.charging_unit_seconds;

  // Split the live rows: ready (and revoking — projected conservatively as
  // if they keep recharging) versus still-provisioning boots. Draining rows
  // expire at their boundary without recharging and never count toward the
  // held pool.
  struct ReadyRow {
    sim::InstanceId id;
    double ttc;
  };
  struct BootRow {
    sim::InstanceId id;
    double ready_delta;
  };
  std::vector<ReadyRow> ready;
  std::vector<BootRow> boots;
  for (const sim::InstanceObservation& inst : snapshot.instances) {
    if (inst.draining) continue;
    if (inst.provisioning) {
      boots.push_back(
          BootRow{inst.id, std::max(0.0, inst.ready_at - snapshot.now)});
    } else {
      ready.push_back(ReadyRow{inst.id, inst.time_to_next_charge});
    }
  }
  std::uint32_t live = static_cast<std::uint32_t>(ready.size() + boots.size());

  // Shrink toward the target in budget-enforcement order: cancel the boots
  // that arrive last first (capacity that never materialised is the cheapest
  // to give up), then drain the ready rows whose unit recharges soonest
  // (the largest near-term saving). Ties break on id for determinism.
  if (target_pool < live) {
    std::sort(boots.begin(), boots.end(), [](const BootRow& a,
                                             const BootRow& b) {
      if (a.ready_delta != b.ready_delta) return a.ready_delta > b.ready_delta;
      return a.id > b.id;
    });
    std::sort(ready.begin(), ready.end(), [](const ReadyRow& a,
                                             const ReadyRow& b) {
      if (a.ttc != b.ttc) return a.ttc < b.ttc;
      return a.id < b.id;
    });
    std::uint32_t drop = live - target_pool;
    const std::uint32_t boot_drop =
        std::min(drop, static_cast<std::uint32_t>(boots.size()));
    boots.resize(boots.size() - boot_drop);
    drop -= boot_drop;
    ready.erase(ready.begin(),
                ready.begin() + std::min<std::size_t>(drop, ready.size()));
    live = target_pool;
  }

  double burn = 0.0;
  for (const ReadyRow& row : ready) {
    burn += units_starting_within(row.ttc, horizon, u);
  }
  for (const BootRow& row : boots) {
    // Committed-first-unit semantics: a boot in flight owes its first unit
    // whenever it lands, horizon or not.
    burn += std::max(1.0, units_starting_within(row.ready_delta, horizon, u));
  }
  if (target_pool > live) {
    const double grow_burn =
        std::max(1.0, units_starting_within(config.lag_seconds, horizon, u));
    burn += static_cast<double>(target_pool - live) * grow_burn;
  }
  return burn;
}

}  // namespace wire::core
