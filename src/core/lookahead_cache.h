// Incremental Analyze phase: a persistent projected-schedule cache that
// consumes each tick's MonitorDelta and re-simulates only with what the
// delta left valid.
//
// Byte-identical steering decisions are the hard contract (Table-I and the
// ensemble baselines are diffed in hexfloat), and that contract forbids the
// naive incremental design of splicing cached floating-point results across
// ticks: "finish = now + max(0, E - elapsed)" recomputed at t1 differs in
// ulps from the t0 value shifted forward, even when mathematically equal.
// What the cache eliminates instead is the dominant cost of the from-scratch
// path — thousands of per-task predictor calls (log() in the input-bucket
// key, map lookups, policy scans) across the projected queue — by memoizing
// execution estimates under a per-stage revision key and re-running the
// shared event-loop skeleton (lookahead_impl.h) on the fresh snapshot. The
// arithmetic is identical by construction; the memo is obliged to return
// bit-equal doubles, which the per-tick differential suite enforces under
// fault chaos.
//
// The delta classification decides, per tick, whether the memo can be
// trusted wholesale or the cache should fall back to direct predictor calls
// (the exact lambdas simulate_interval uses):
//
//   kFirstTick      first projection of a run — nothing cached yet.
//   kNonExactDelta  coalesced/dropout or hand-built snapshot — the journal
//                   does not cover the interval, so nothing can be matched
//                   against the previous projection.
//   kPoolChanged    an instance lifecycle changed (boot completed, drain,
//                   revocation notice, add/remove) — the wavefront's slot
//                   topology moved, and such ticks also batch task churn.
//   kRefitDrift     the predictor refit more stages this tick than the
//                   configured threshold — the memo is mostly cold anyway.
//   kMisprediction  a task completed that the previous projection did not
//                   predict (actual beat the conservative minimum) —
//                   optional, on by default.
//   kIncremental    the fast path: memoized estimates.
//
// Dispatch drift (a task observed Running that the previous projection had
// queued elsewhere) is counted but does not trigger fallback by default: the
// event loop reads true placements from the fresh snapshot, so drift is
// harmless to the outputs — §III-D makes the same argument for the paper's
// controller.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/lookahead.h"
#include "core/plan_scratch.h"
#include "core/run_state.h"
#include "predict/estimator.h"
#include "predict/task_predictor.h"
#include "sim/config.h"
#include "sim/monitor.h"

namespace wire::predict {
class MemoryPredictor;
}

namespace wire::core {

/// Which path produced this tick's lookahead (see taxonomy above).
enum class AnalyzePath : std::uint8_t {
  kIncremental = 0,
  kFirstTick,
  kNonExactDelta,
  kPoolChanged,
  kRefitDrift,
  kMisprediction,
  kDisabled,
};
inline constexpr std::size_t kAnalyzePathCount = 7;

const char* analyze_path_label(AnalyzePath path);

struct LookaheadCacheOptions {
  /// Master switch; off reproduces the pre-cache controller exactly (every
  /// tick classified kDisabled, direct predictor calls).
  bool enabled = true;
  /// Fall back when more than this many stages refit in one observe() — the
  /// memo is mostly invalid and revalidating it per task costs more than the
  /// direct calls it saves.
  std::uint32_t refit_fallback_stages = 8;
  /// Fall back when a completion beat the previous projection (see
  /// kMisprediction). Conservative-minimum predictions make the projected
  /// completion set a superset of the actual one in the common case, so this
  /// stays cheap to leave on. Off also disables wavefront-stamp maintenance
  /// entirely — capture, delta scans and stamp writes — since nothing reads
  /// the stamps then; the projection-accuracy stats counters stay 0 (see
  /// LookaheadCacheStats).
  bool fallback_on_misprediction = true;
  /// Second, independently ablatable lever: adaptive horizon capping. Stops
  /// emitting queue-tail entries once Algorithm 3's pool size provably
  /// saturates the binding instance ceiling (see detail::EmissionCap for the
  /// bound). Steering decisions are unchanged; the unclamped demand signal
  /// (PoolCommand::desired_pool) saturates at >= the ceiling instead of
  /// being exact, so this defaults off and must stay off for multi-tenant
  /// runs whose arbiter consumes that signal.
  bool adaptive_horizon = false;
  /// Plan-phase incrementality: on quiet (kIncremental) ticks, stamp the
  /// projected wavefront with per-entry deadline/start annotations and pack
  /// the Algorithm-3 pool size inline during Q_task emission, so steer()
  /// consumes the stamp instead of rebuilding and re-packing the occupancy
  /// vector. Shares the Analyze cache's classification verbatim — ONE
  /// classify() per tick decides both caches, so the Plan stamp can never
  /// lag the Analyze path by a revision. Fallback ticks (first-tick,
  /// non-exact, pool-changed, refit, misprediction, disabled) leave
  /// plan_valid unset and steering takes its from-scratch path; decisions
  /// are bit-identical either way (same Alg3Packer, same clamped doubles,
  /// same order).
  bool plan_stamps = true;
};

struct LookaheadCacheStats {
  std::uint64_t ticks = 0;
  /// Ticks per classification outcome, indexed by AnalyzePath.
  std::uint64_t by_path[kAnalyzePathCount] = {};
  /// Exec-estimate memo traffic on fast-path ticks.
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  /// Delta completions that matched / beat the previous projection, and
  /// newly Running tasks the previous projection never put on a slot.
  /// Maintained only while `fallback_on_misprediction` is on: with it off
  /// the wavefront stamps these compare against are not captured at all
  /// (the per-tick capture push_backs, the delta scans and the stamp writes
  /// are skipped wholesale — the classification never reads them), so all
  /// three counters stay 0.
  std::uint64_t matched_completions = 0;
  std::uint64_t mispredicted_completions = 0;
  std::uint64_t drifted_dispatches = 0;
  /// Adaptive-horizon activity.
  std::uint64_t truncated_tasks = 0;
  std::uint64_t capped_ticks = 0;
  /// Ticks whose result carried a valid Plan stamp (steering consumed
  /// planned_pool directly instead of re-packing Q_task).
  std::uint64_t stamped_plan_ticks = 0;
};

/// The persistent projected-schedule object owned by WireController. One
/// instance per run; reset() rebinds it (on_run_start).
class IncrementalLookahead {
 public:
  explicit IncrementalLookahead(const LookaheadCacheOptions& options = {});

  /// Drops all cached state and sizes the memo for `workflow`.
  void reset(const dag::Workflow& workflow);

  /// Produces this tick's LookaheadResult. `online` is the TaskPredictor
  /// when the estimator is the online one (enables the exec-estimate memo),
  /// null otherwise (oracle/history: direct calls either way — their
  /// estimates are already O(1)). `state`, when ready, lends its
  /// incomplete-predecessor counters for the projection (undo-logged, never
  /// left modified). `memory`, when non-null with config.memory enabled,
  /// makes the projection memory-aware; its reservations are predicted LIVE
  /// on both the incremental and the fallback path (never memoized — O(1)
  /// per call), so the memo/classification contract is untouched and the
  /// incremental result stays bit-equal to the memory-aware from-scratch
  /// reference. The returned reference is valid until the next tick().
  const LookaheadResult& tick(const dag::Workflow& workflow,
                              const sim::MonitorSnapshot& snapshot,
                              const predict::Estimator& estimator,
                              const predict::TaskPredictor* online,
                              const sim::CloudConfig& config,
                              RunState* state,
                              const predict::MemoryPredictor* memory =
                                  nullptr);

  AnalyzePath last_path() const { return last_path_; }
  const LookaheadCacheStats& stats() const { return stats_; }
  const LookaheadCacheOptions& options() const { return options_; }

  /// Flips the adaptive-horizon lever between ticks (the BanditSelector
  /// arm-switch hook — arms may differ in horizon capping). Safe mid-run:
  /// the cap only truncates queue-tail emission; the exec/occupancy memos
  /// key on predictor revisions and never depend on it. A truncated
  /// projection stamps a smaller wavefront, which can only make the next
  /// classification more conservative (more fallbacks, never stale reuse).
  void set_adaptive_horizon(bool enabled) {
    options_.adaptive_horizon = enabled;
  }

  /// The Plan scratch arena the projection runs on. Owned (constructed
  /// per-lookahead) by default; set_scratch() rebinds to a shared arena so
  /// N tenant controllers stepped sequentially reuse ONE set of buffers
  /// (see plan_scratch.h for the serialization contract). Never null.
  const std::shared_ptr<PlanScratch>& scratch() const { return scratch_; }
  void set_scratch(std::shared_ptr<PlanScratch> scratch) {
    if (scratch != nullptr) scratch_ = std::move(scratch);
  }

  /// Resident footprint in bytes (§IV-F overhead accounting). Excludes the
  /// scratch arena, which may be shared across controllers — charge
  /// PlanScratch::state_bytes() once per arena, not per lookahead.
  std::size_t state_bytes() const;

 private:
  struct MemoEntry {
    double exec = 0.0;
    std::uint64_t stage_revision = 0;
    bool ready_class = false;
    bool valid = false;
  };

  /// Composed remaining occupancy (transfer + exec), valid only for
  /// non-Running tasks: their occupancy is a pure function of the exec
  /// estimate, the global transfer estimate and the task's readiness class.
  /// Running tasks subtract wall-clock progress — never stored. Validation
  /// is delta-driven rather than re-derived per query: every tick clears the
  /// entries of delta.phase_changed tasks (the journal lists every lifecycle
  /// transition) and bumps a generation counter when the model revision
  /// moved or the delta is not exact. A surviving key therefore proves the
  /// phase, the stage model and the transfer estimate are all unchanged
  /// since the value was stored — the hit path is one 16-byte load and one
  /// compare, with no TaskObservation access. That matters: the queue-tail
  /// emission touches one of these per Q_task entry and the loop is
  /// memory-bound.
  struct OccupancyMemo {
    double occupancy = 0.0;
    /// (occ_generation_ << 1) | 1 at store time; 0 = invalid.
    std::uint64_t key = 0;
  };

  AnalyzePath classify(const sim::MonitorSnapshot& snapshot,
                       const predict::Estimator& estimator,
                       const predict::TaskPredictor* online,
                       bool saw_misprediction) const;

  /// Revision-validated execution estimate: bit-equal to
  /// predict_exec(task).exec_seconds by construction (the stored double is
  /// the value a direct call returned, and policies 3-5 are pure functions
  /// of the memo key). Policies 1-2 depend on wall time and peer dispatches
  /// that no revision tracks, so they are never stored.
  double memo_exec(const dag::Workflow& workflow,
                   const predict::TaskPredictor& online, dag::TaskId task,
                   const sim::MonitorSnapshot& snapshot);

  /// Revision-validated remaining occupancy: the stored double is the value
  /// remaining_occupancy_with returned for the same (exec, observation)
  /// inputs, so returning it is bit-equal to recomputing. Falls back to
  /// memo_exec + composition for Running/Completed tasks.
  double memo_occupancy(const dag::Workflow& workflow,
                        const predict::TaskPredictor& online, dag::TaskId task,
                        const sim::MonitorSnapshot& snapshot);

  LookaheadCacheOptions options_;
  LookaheadCacheStats stats_;
  LookaheadResult result_;
  AnalyzePath last_path_ = AnalyzePath::kFirstTick;
  bool primed_ = false;
  std::uint64_t last_revision_ = 0;

  std::vector<MemoEntry> memo_;
  std::vector<OccupancyMemo> occ_memo_;
  /// Occupancy-memo generation: bumped whenever the estimator revision moves
  /// or a tick's delta is not exact (bulk invalidation without an O(V)
  /// clear). occ_key_ is the generation encoded as a valid OccupancyMemo key
  /// for the current tick.
  std::uint64_t occ_generation_ = 0;
  std::uint64_t occ_key_ = 1;
  std::uint64_t last_occ_revision_ = 0;
  /// Previous projection's wavefront, stamp-encoded (== epoch_) to avoid an
  /// O(V) clear per tick.
  std::vector<std::uint64_t> projected_complete_stamp_;
  std::vector<std::uint64_t> projected_running_stamp_;
  std::uint64_t epoch_ = 0;

  /// Per-tick scratch arena (projection event loop, wavefront capture, undo
  /// log), reused across ticks — and, when rebound via set_scratch(), shared
  /// across tenant lookaheads. Never null.
  std::shared_ptr<PlanScratch> scratch_;
};

}  // namespace wire::core
