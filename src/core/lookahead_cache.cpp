#include "core/lookahead_cache.h"

#include "core/lookahead_impl.h"
#include "predict/memory_predictor.h"
#include "util/check.h"

namespace wire::core {

using dag::TaskId;
using sim::TaskPhase;

const char* analyze_path_label(AnalyzePath path) {
  switch (path) {
    case AnalyzePath::kIncremental:
      return "incremental";
    case AnalyzePath::kFirstTick:
      return "first-tick";
    case AnalyzePath::kNonExactDelta:
      return "non-exact-delta";
    case AnalyzePath::kPoolChanged:
      return "pool-changed";
    case AnalyzePath::kRefitDrift:
      return "refit-drift";
    case AnalyzePath::kMisprediction:
      return "misprediction";
    case AnalyzePath::kDisabled:
      return "disabled";
  }
  return "unknown";
}

IncrementalLookahead::IncrementalLookahead(const LookaheadCacheOptions& options)
    : options_(options), scratch_(std::make_shared<PlanScratch>()) {}

void IncrementalLookahead::reset(const dag::Workflow& workflow) {
  const std::size_t n = workflow.task_count();
  stats_ = LookaheadCacheStats{};
  result_ = LookaheadResult{};
  last_path_ = AnalyzePath::kFirstTick;
  primed_ = false;
  last_revision_ = 0;
  memo_.assign(n, MemoEntry{});
  occ_memo_.assign(n, OccupancyMemo{});
  occ_generation_ = 0;
  occ_key_ = 1;
  last_occ_revision_ = 0;
  projected_complete_stamp_.assign(n, 0);
  projected_running_stamp_.assign(n, 0);
  epoch_ = 0;
}

AnalyzePath IncrementalLookahead::classify(
    const sim::MonitorSnapshot& snapshot, const predict::Estimator& estimator,
    const predict::TaskPredictor* online, bool saw_misprediction) const {
  if (!options_.enabled) return AnalyzePath::kDisabled;
  if (!primed_) return AnalyzePath::kFirstTick;
  const sim::MonitorDelta& delta = snapshot.delta;
  if (!delta.exact) return AnalyzePath::kNonExactDelta;
  if (!delta.instances_changed.empty()) return AnalyzePath::kPoolChanged;
  // Estimators without per-stage revisions (none today) are treated as one
  // big stage: any revision movement counts as drift past the threshold.
  const std::uint32_t refits =
      online != nullptr
          ? online->last_refit_stages()
          : (estimator.revision() != last_revision_
                 ? options_.refit_fallback_stages + 1
                 : 0);
  if (refits > options_.refit_fallback_stages) return AnalyzePath::kRefitDrift;
  // `saw_misprediction` is the single wavefront-vs-delta pass in tick() —
  // classification no longer re-scans delta.completed on every quiet tick.
  if (options_.fallback_on_misprediction && saw_misprediction) {
    return AnalyzePath::kMisprediction;
  }
  return AnalyzePath::kIncremental;
}

double IncrementalLookahead::memo_exec(const dag::Workflow& workflow,
                                       const predict::TaskPredictor& online,
                                       TaskId task,
                                       const sim::MonitorSnapshot& snapshot) {
  const sim::TaskObservation& obs = snapshot.tasks[task];
  if (obs.phase == TaskPhase::Completed) {
    // The lookahead never asks about completed tasks; defensive passthrough.
    return online.predict_exec(task, snapshot).exec_seconds;
  }
  const std::uint64_t revision =
      online.stage_revision(workflow.task(task).stage);
  const bool ready_class =
      obs.phase == TaskPhase::Ready || obs.phase == TaskPhase::Running;
  MemoEntry& entry = memo_[task];
  if (entry.valid && entry.stage_revision == revision &&
      entry.ready_class == ready_class) {
    ++stats_.memo_hits;
    return entry.exec;
  }
  ++stats_.memo_misses;
  const predict::Prediction pred = online.predict_exec(task, snapshot);
  if (pred.policy == predict::Policy::CompletedNotReady ||
      pred.policy == predict::Policy::CompletedKnownSize ||
      pred.policy == predict::Policy::CompletedNewSize) {
    entry.exec = pred.exec_seconds;
    entry.stage_revision = revision;
    entry.ready_class = ready_class;
    entry.valid = true;
  } else {
    // Policies 1-2: wall-time / peer-dispatch dependent, never cached.
    entry.valid = false;
  }
  return pred.exec_seconds;
}

double IncrementalLookahead::memo_occupancy(
    const dag::Workflow& workflow, const predict::TaskPredictor& online,
    TaskId task, const sim::MonitorSnapshot& snapshot) {
  OccupancyMemo& entry = occ_memo_[task];
  // A key surviving to the current generation proves (see OccupancyMemo)
  // that the task's phase, its stage model and the transfer estimate are
  // all unchanged since the value was stored, so recomputing would repeat
  // the identical arithmetic. No observation load on this path.
  if (entry.key == occ_key_) {
    ++stats_.memo_hits;
    return entry.occupancy;
  }
  const sim::TaskObservation& obs = snapshot.tasks[task];
  if (obs.phase == TaskPhase::Ready || obs.phase == TaskPhase::Pending) {
    const double occ = online.remaining_occupancy_with(
        memo_exec(workflow, online, task, snapshot), obs);
    // memo_exec just validated the exec-level entry for this task; the
    // composed value is only storable when the exec estimate was (policies
    // 1-2 are never cached, and neither are their compositions).
    entry.occupancy = occ;
    entry.key = memo_[task].valid ? occ_key_ : 0;
    return occ;
  }
  // Running (wall-clock-dependent remainder) and Completed (zero): compose
  // from the exec estimate every time.
  return online.remaining_occupancy_with(
      memo_exec(workflow, online, task, snapshot), obs);
}

const LookaheadResult& IncrementalLookahead::tick(
    const dag::Workflow& workflow, const sim::MonitorSnapshot& snapshot,
    const predict::Estimator& estimator, const predict::TaskPredictor* online,
    const sim::CloudConfig& config, RunState* state,
    const predict::MemoryPredictor* memory) {
  ++stats_.ticks;

  // Wavefront stamps exist solely for the misprediction fallback and its
  // accuracy stats; with that lever off, skip their whole lifecycle —
  // capture push_backs inside the projection, the delta scan here, and the
  // stamp writes below (see LookaheadCacheStats for the stats contract).
  const bool track_wavefront = options_.fallback_on_misprediction;

  // The single wavefront-vs-delta pass: projection-accuracy accounting and
  // the misprediction signal classification consumes (the classifier used to
  // re-scan delta.completed itself — one pass now serves both).
  bool saw_misprediction = false;
  if (track_wavefront && primed_ && snapshot.delta.exact) {
    for (TaskId t : snapshot.delta.completed) {
      if (projected_complete_stamp_[t] == epoch_) {
        ++stats_.matched_completions;
      } else {
        ++stats_.mispredicted_completions;
        saw_misprediction = true;
      }
    }
    for (TaskId t : snapshot.delta.phase_changed) {
      if (snapshot.tasks[t].phase == TaskPhase::Running &&
          projected_running_stamp_[t] != epoch_) {
        ++stats_.drifted_dispatches;
      }
    }
  }

  last_path_ = classify(snapshot, estimator, online, saw_misprediction);
  stats_.by_path[static_cast<std::size_t>(last_path_)] += 1;

  // Occupancy-memo invalidation (see OccupancyMemo): exact deltas name every
  // task whose lifecycle phase moved — clearing just those entries keeps the
  // rest provably current. Anything that invalidates entries wholesale (a
  // model revision movement, a non-exact delta) bumps the generation
  // instead, which orphans every stored key at once without an O(V) sweep.
  if (options_.enabled) {
    if (snapshot.delta.exact) {
      for (TaskId t : snapshot.delta.phase_changed) {
        occ_memo_[t].key = 0;
      }
    } else {
      ++occ_generation_;
    }
    if (estimator.revision() != last_occ_revision_) {
      ++occ_generation_;
      last_occ_revision_ = estimator.revision();
    }
    occ_key_ = (occ_generation_ << 1) | 1u;
  }

  // Predecessor counters: borrow the RunState's vector with an undo log
  // (O(projected firings) restore) when it is current, else seed a local
  // copy exactly the way simulate_interval does.
  PlanScratch& scratch = *scratch_;
  scratch.undo.clear();
  std::vector<std::uint32_t>* preds = nullptr;
  std::vector<TaskId>* undo_log = nullptr;
  if (state != nullptr && state->ready()) {
    preds = &state->speculative_preds();
    undo_log = &scratch.undo;
  } else {
    scratch.local_preds.assign(workflow.task_count(), 0);
    for (const dag::TaskSpec& t : workflow.tasks()) {
      for (TaskId pred : workflow.predecessors(t.id)) {
        if (snapshot.tasks[pred].phase != TaskPhase::Completed) {
          ++scratch.local_preds[t.id];
        }
      }
    }
    preds = &scratch.local_preds;
  }

  scratch.projected_complete.clear();
  scratch.projected_running.clear();
  detail::WavefrontCapture capture;
  if (track_wavefront) {
    capture.projected_complete = &scratch.projected_complete;
    capture.projected_running = &scratch.projected_running;
  }

  detail::EmissionCap cap;
  if (options_.adaptive_horizon &&
      snapshot.pool_cap != sim::kNoInstanceCap) {
    cap.enabled = true;
    cap.target_pool = snapshot.pool_cap;
  }

  // Plan stamping rides the SAME classification that just picked the
  // Analyze path — one classify() per tick decides both caches (satellite
  // of the same invalidation contract, and the reason the stamp can never
  // lag the Analyze side by a revision).
  const bool plan_capture = options_.plan_stamps &&
                            last_path_ == AnalyzePath::kIncremental &&
                            online != nullptr;

  // Memory reservations are predicted live on BOTH paths (never memoized):
  // the sizing is O(1) per call, and sharing the one lambda is what makes
  // the incremental projection trivially bit-equal to the memory-aware
  // from-scratch reference on the memory axis.
  const auto mem_of = [&](TaskId task) {
    return memory != nullptr ? memory->predict_reservation(task, snapshot)
                             : 0.0;
  };

  if (last_path_ == AnalyzePath::kIncremental && online != nullptr) {
    detail::simulate_interval_impl(
        workflow, snapshot, config, *preds, undo_log,
        [&](TaskId task) {
          return memo_occupancy(workflow, *online, task, snapshot);
        },
        [&](TaskId task) {
          return online->transfer_estimate() +
                 memo_exec(workflow, *online, task, snapshot);
        },
        mem_of, cap, capture, scratch, plan_capture, result_);
  } else {
    // Fallback (and the no-online-predictor fast path): the exact occupancy
    // lambdas simulate_interval uses.
    detail::simulate_interval_impl(
        workflow, snapshot, config, *preds, undo_log,
        [&](TaskId task) {
          return estimator.predict_remaining_occupancy(task, snapshot);
        },
        [&](TaskId task) {
          return estimator.transfer_estimate() +
                 estimator.estimate_exec(task, snapshot);
        },
        mem_of, cap, capture, scratch, /*plan_capture=*/false, result_);
  }

  if (undo_log != nullptr) {
    for (TaskId t : scratch.undo) ++(*preds)[t];
  }

  ++epoch_;
  if (track_wavefront) {
    for (TaskId t : scratch.projected_complete) {
      projected_complete_stamp_[t] = epoch_;
    }
    for (TaskId t : scratch.projected_running) {
      projected_running_stamp_[t] = epoch_;
    }
  }
  primed_ = true;
  last_revision_ = estimator.revision();

  stats_.truncated_tasks += result_.truncated_tasks;
  if (result_.truncated_tasks > 0) ++stats_.capped_ticks;
  if (result_.plan_valid) ++stats_.stamped_plan_ticks;
  return result_;
}

std::size_t IncrementalLookahead::state_bytes() const {
  const auto vec = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  std::size_t bytes = sizeof(*this);
  bytes += vec(memo_) + vec(occ_memo_) + vec(projected_complete_stamp_) +
           vec(projected_running_stamp_);
  bytes += vec(result_.upcoming) + vec(result_.stamps);
  bytes += result_.restart_cost.size() *
           (sizeof(sim::InstanceId) + sizeof(double));
  return bytes;
}

}  // namespace wire::core
