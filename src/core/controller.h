// The WIRE controller: the paper's MAPE loop (Fig. 1).
//
// Each control interval: Monitor (harvest the snapshot through the task
// predictor), Analyze (update the per-stage models), Plan (lookahead
// simulation + resource-steering policy), Execute (return the pool command to
// the cloud API). The controller is a ScalingPolicy, so the same run driver
// executes WIRE and every baseline under identical conditions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/lookahead.h"
#include "core/lookahead_cache.h"
#include "core/run_state.h"
#include "predict/bandit.h"
#include "predict/estimator.h"
#include "predict/history.h"
#include "predict/memory_predictor.h"
#include "predict/task_predictor.h"
#include "sim/scaling_policy.h"

namespace wire::core {

struct WireOptions {
  predict::PredictorConfig predictor;
  /// Ablation: skip the DAG lookahead; the upcoming load is just the tasks
  /// active right now with their predicted remaining occupancy (degrades
  /// WIRE toward a model-informed reactive policy).
  bool disable_lookahead = false;
  /// Experiment: replace the online predictor with the clairvoyant
  /// OracleEstimator (DAG reference times). Quantifies how much of WIRE's
  /// behaviour is limited by prediction accuracy (§IV-E robustness claim).
  bool oracle_estimator = false;
  /// Experiment: replace the online predictor with a Jockey-style
  /// HistoryEstimator built from this prior run (Observation 2 study).
  /// Shared so a whole experiment matrix can reuse one archive. Takes
  /// precedence below oracle_estimator.
  std::shared_ptr<const std::vector<predict::HistoryRecord>> history;
  /// Improvement over the paper: when the plan calls for growth and
  /// instances are currently draining toward their charge boundary, cancel
  /// drains instead of booting new instances — reclaimed capacity is
  /// instant and its charging unit is already running. Off by default
  /// (fidelity to Algorithm 2); the ablation bench measures it.
  bool reclaim_draining = false;
  /// Incremental Analyze phase (lookahead_cache.h): delta-classified
  /// projection with a revision-validated estimate memo. Steering decisions
  /// are byte-identical with the cache on or off; `enabled = false` is the
  /// ablation knob.
  LookaheadCacheOptions lookahead_cache;
  /// Optional shared Plan scratch arena. When non-null, this controller's
  /// lookahead projects on these buffers instead of its own — the ensemble
  /// path hands N tenant controllers ONE arena (they are stepped strictly
  /// sequentially; see plan_scratch.h for the contract). Null keeps a
  /// per-controller arena. Bit-identical either way.
  std::shared_ptr<PlanScratch> plan_scratch;
  /// Report the projected memory footprint of the upcoming load (sum of
  /// Q_task reservations) as PoolCommand::desired_mem_mb — the second axis
  /// of the multi-tenant demand signal (ensemble memory-aware arbitration).
  /// Off by default: the field stays 0 and every baseline is byte-identical.
  /// No effect when the run's memory dimension is off.
  bool report_memory_demand = false;
  /// Online predictor selection (predict/bandit.h): a seeded bandit over a
  /// small arm set of predictor configurations, scored by per-tick
  /// misprediction regret and switched between control ticks through
  /// TaskPredictor::reconfigure. `bandit.arms == 0` (the default) is the
  /// off sentinel — no selector, no RNG stream, byte-identical to every
  /// baseline. Only meaningful with the online predictor; ignored under
  /// oracle_estimator / history (their estimates have no learned config to
  /// select among).
  predict::BanditOptions bandit;
  /// Crash-aware steering (extension beyond the paper): maintain a
  /// controller-side crash-hazard estimate from the monitoring surface alone
  /// (instance removals the controller did not order, over observed
  /// instance-hours) and inflate Algorithm 3's planned pool so *expected
  /// delivered* capacity under that hazard matches the packed demand (see
  /// steer()). Off by default; on a reliable cloud the estimate stays 0 and
  /// steering is bit-identical either way.
  bool crash_aware_steering = false;
};

/// Per-iteration trace record (consumed by the overhead bench and tests).
struct MapeTrace {
  sim::SimTime now = 0.0;
  std::size_t upcoming_tasks = 0;
  /// Sum of predicted remaining occupancy over Q_task (seconds).
  double upcoming_load_seconds = 0.0;
  /// Algorithm 3's planned pool size p.
  std::uint32_t planned_pool = 0;
  std::uint32_t grow = 0;
  std::uint32_t releases = 0;
  /// Which Analyze path produced the lookahead this tick (kDisabled when the
  /// cache is off, kFirstTick placeholder under disable_lookahead).
  AnalyzePath analyze_path = AnalyzePath::kFirstTick;
  /// True when steering consumed the lookahead's inline Plan stamp
  /// (planned_pool packed during Q_task emission) instead of re-packing.
  bool plan_stamped = false;
};

class WireController final : public sim::ScalingPolicy {
 public:
  explicit WireController(const WireOptions& options = {});

  std::string name() const override {
    if (options_.oracle_estimator) return "wire-oracle";
    if (options_.history) return "wire-history";
    if (options_.bandit.enabled()) return "wire-bandit";
    return "wire";
  }
  void on_run_start(const dag::Workflow& workflow,
                    const sim::CloudConfig& config) override;
  sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override;

  /// Observer invoked after every MAPE iteration (optional).
  void set_trace_listener(std::function<void(const MapeTrace&)> listener) {
    trace_listener_ = std::move(listener);
  }

  /// The live estimator (valid between on_run_start and run end).
  const predict::Estimator& estimator() const;

  /// The live online predictor; requires the default (non-oracle) estimator.
  const predict::TaskPredictor& predictor() const;

  /// The incremental lookahead's per-run statistics (path counts, memo
  /// traffic, projection accuracy).
  const LookaheadCacheStats& lookahead_stats() const {
    return lookahead_.stats();
  }

  /// The live memory predictor, or null when the run's memory dimension is
  /// off (valid between on_run_start and run end).
  const predict::MemoryPredictor* memory_predictor() const {
    return memory_.get();
  }

  /// The live bandit selector, or null when `options.bandit` is off (or the
  /// estimator is oracle/history). Valid between on_run_start and run end.
  const predict::BanditSelector* bandit() const { return selector_.get(); }

  /// Algorithm 3's unclamped planned pool size from the last plan() call
  /// (0 until the first tick) — the anchor of the burn projection below.
  std::uint32_t last_planned_pool() const { return last_planned_pool_; }

  /// Projected billing burn of holding the last planned pool over the next
  /// `horizon` seconds: charging units newly starting in (now, now +
  /// horizon], per core::planned_burn_units. This is the spend-rate signal
  /// budget enforcement consumes — what the plan will cost before the money
  /// is gone, not after (policies::BudgetPolicy, DESIGN.md §4.16).
  double planned_burn_units(const sim::MonitorSnapshot& snapshot,
                            double horizon) const;

  /// Controller state footprint in bytes (§IV-F overhead accounting).
  std::size_t state_bytes() const;

 private:
  WireOptions options_;
  const dag::Workflow* workflow_ = nullptr;
  sim::CloudConfig config_;
  std::unique_ptr<predict::Estimator> estimator_;
  /// Non-null iff the estimator is the online TaskPredictor.
  predict::TaskPredictor* online_ = nullptr;
  /// Online predictor selection; non-null iff options_.bandit is enabled
  /// and the estimator is the online predictor.
  std::unique_ptr<predict::BanditSelector> selector_;
  /// Online memory-reservation predictor; constructed iff the run's
  /// MemoryConfig is enabled (null otherwise — the memory dimension then
  /// costs the controller nothing, not even a branch per task).
  std::unique_ptr<predict::MemoryPredictor> memory_;
  /// Incomplete-predecessor counts for the lookahead, kept current in
  /// O(changes) per tick from the snapshot's delta journal.
  RunState run_state_;
  /// Persistent projected-schedule cache (the incremental Analyze phase).
  IncrementalLookahead lookahead_;
  std::function<void(const MapeTrace&)> trace_listener_;
  /// Crash-aware steering state (options_.crash_aware_steering): hazard =
  /// unordered removals / observed instance-hours, both integrated from the
  /// snapshot stream. pending_releases_ matches ordered releases against
  /// later removals so only the provider's own revocations count as crashes.
  double hazard_exposure_hours_ = 0.0;
  std::uint64_t hazard_crashes_ = 0;
  std::uint64_t hazard_pending_releases_ = 0;
  sim::SimTime hazard_mark_ = 0.0;
  std::uint32_t last_planned_pool_ = 0;
};

}  // namespace wire::core
