// WIRE's internal workflow simulator (paper §III-B2).
//
// This is NOT the ground-truth simulator: it runs inside the controller, on
// *predicted* task occupancy times, to project the execution over the next
// control interval. Its outputs are the "upcoming load" Q_task — the tasks
// expected to be active (running or queued) at the start of the next interval
// with their conservatively predicted minimum remaining occupancy — and the
// per-instance restart costs c_j (the maximum sunk occupancy of any task
// projected to be running on the instance at that time).
#pragma once

#include <unordered_map>
#include <vector>

#include "dag/workflow.h"
#include "core/plan_scratch.h"
#include "core/run_state.h"
#include "predict/estimator.h"
#include "sim/config.h"
#include "sim/monitor.h"

namespace wire::predict {
class MemoryPredictor;
}

namespace wire::core {

/// One entry of the upcoming load Q_task. Field order packs the struct into
/// 24 bytes (16 before the memory dimension); Q_task runs to thousands of
/// entries per control tick and the emission loop is store-bandwidth-bound,
/// so the layout is measurable.
struct UpcomingTask {
  /// Predicted minimum remaining slot occupancy at the start of the next
  /// interval (seconds).
  double remaining_occupancy = 0.0;
  dag::TaskId task = dag::kInvalidTask;
  /// True if the task is projected to be occupying a slot at the start of
  /// the next interval (as opposed to waiting in the ready queue). On-slot
  /// tasks cannot be time-multiplexed by the pool-sizing bin-packer: their
  /// instance is pinned for at least the next charging unit.
  bool on_slot = false;
  /// Projected memory reservation (MB) the entry will hold; 0 in memory-off
  /// runs. On-slot entries carry the booked reservation the projection saw,
  /// queued entries the predictor's sizing — the SAME stored value both the
  /// inline Plan-stamp packer and steer()'s from-scratch rebuild consume, so
  /// the two paths cannot drift on memory grounds.
  double mem_mb = 0.0;
};

/// Per-entry Plan stamp for one Q_task entry, parallel to
/// LookaheadResult::upcoming (stamps[i] annotates upcoming[i]). Emitted in
/// steering-ready order: on-slot entries by projected completion, then the
/// projected ready queue in dispatch order — exactly the order Algorithm 3
/// consumes.
struct WavefrontStamp {
  /// Absolute projected completion time (deadline) of the slot's current
  /// attempt; -1 for queued entries (no slot, no projected deadline).
  /// Entries with deadline > horizon are projected still-busy at the next
  /// interval start and are the ones charged restart cost.
  double deadline = -1.0;
  /// Absolute start time of the attempt occupying the slot; -1 for queued
  /// entries.
  double start = -1.0;
  /// The occupancy Algorithm 3 packs for this entry: the steering clamp
  /// (on-slot entries pinned at >= one charging unit) already applied.
  double packed_occupancy = 0.0;
  /// Hosting instance for on-slot entries; kInvalidInstance for queued ones.
  sim::InstanceId instance = sim::kInvalidInstance;
};

struct LookaheadResult {
  /// Q_task in projected dispatch order (tasks already on slots first, by
  /// projected completion; then the projected ready queue).
  std::vector<UpcomingTask> upcoming;
  /// Plan stamps parallel to `upcoming`, filled only when `plan_valid` is
  /// set; empty otherwise.
  std::vector<WavefrontStamp> stamps;
  /// Restart cost per instance: max sunk occupancy (seconds) among tasks
  /// projected to be running on it at the start of the next interval.
  /// Instances absent from the map have no running tasks (cost 0).
  std::unordered_map<sim::InstanceId, double> restart_cost;
  /// Tasks projected to complete within the interval.
  std::uint32_t projected_completions = 0;
  /// Queue-tail entries omitted by the adaptive horizon cap (see
  /// LookaheadCacheOptions::adaptive_horizon). Always 0 from
  /// simulate_interval and from the cache with the cap off; when non-zero,
  /// `upcoming` is a prefix whose Algorithm-3 pool size already saturates
  /// the binding instance ceiling, so the steering decision is unchanged.
  std::uint32_t truncated_tasks = 0;
  /// Algorithm-3 planned pool size, packed inline during Q_task emission by
  /// the same Alg3Packer steering would run from scratch. Meaningful only
  /// when `plan_valid` is set.
  std::uint32_t planned_pool = 0;
  /// True when `stamps`/`planned_pool` were produced this tick under the
  /// Plan-cache contract (incremental lookahead, quiet kIncremental tick);
  /// steer() then consumes `planned_pool` directly. False from
  /// simulate_interval, from every fallback classification, and whenever
  /// plan stamping is disabled — steer() rebuilds from `upcoming`.
  bool plan_valid = false;
};

/// Projects execution from snapshot.now to snapshot.now + lag with the
/// current resource allotment (ready non-draining instances, plus
/// provisioning instances from when they boot; draining instances are
/// excluded and their tasks requeued). FIFO dispatch, mirroring the
/// framework master. The policy controller's predicted assignment may drift
/// from the true schedule; §III-D argues (and §IV-E confirms) the effect is
/// minor.
///
/// `state`, when non-null and ready, supplies the incomplete-predecessor
/// counts maintained incrementally across ticks (see RunState), replacing
/// the O(V + E) per-call seeding scan with an O(V) copy. Null keeps the
/// self-contained from-scratch derivation (tests, one-shot callers).
///
/// `scratch`, when non-null, lends the projection's transient buffers (busy
/// heap, free-slot heap, ready queue, emission buffers) from a reusable
/// arena instead of allocating them per call; null keeps self-contained
/// local buffers. The result is bit-identical either way.
///
/// `memory`, when non-null (and config.memory.enabled()), makes the
/// projection memory-aware: dispatch admits a task only onto an instance
/// with enough projected free memory for its predicted reservation,
/// mirroring the engine's head-of-line admission, and Q_task entries carry
/// that reservation for the memory-aware Algorithm 3. Null (or memory off)
/// keeps the memory-unaware projection byte-identical to the pre-memory
/// code path.
LookaheadResult simulate_interval(const dag::Workflow& workflow,
                                  const sim::MonitorSnapshot& snapshot,
                                  const predict::Estimator& predictor,
                                  const sim::CloudConfig& config,
                                  const RunState* state = nullptr,
                                  PlanScratch* scratch = nullptr,
                                  const predict::MemoryPredictor* memory =
                                      nullptr);

}  // namespace wire::core
