// WIRE's internal workflow simulator (paper §III-B2).
//
// This is NOT the ground-truth simulator: it runs inside the controller, on
// *predicted* task occupancy times, to project the execution over the next
// control interval. Its outputs are the "upcoming load" Q_task — the tasks
// expected to be active (running or queued) at the start of the next interval
// with their conservatively predicted minimum remaining occupancy — and the
// per-instance restart costs c_j (the maximum sunk occupancy of any task
// projected to be running on the instance at that time).
#pragma once

#include <unordered_map>
#include <vector>

#include "dag/workflow.h"
#include "core/run_state.h"
#include "predict/estimator.h"
#include "sim/config.h"
#include "sim/monitor.h"

namespace wire::core {

/// One entry of the upcoming load Q_task. Field order packs the struct into
/// 16 bytes; Q_task runs to thousands of entries per control tick and the
/// emission loop is store-bandwidth-bound, so the layout is measurable.
struct UpcomingTask {
  /// Predicted minimum remaining slot occupancy at the start of the next
  /// interval (seconds).
  double remaining_occupancy = 0.0;
  dag::TaskId task = dag::kInvalidTask;
  /// True if the task is projected to be occupying a slot at the start of
  /// the next interval (as opposed to waiting in the ready queue). On-slot
  /// tasks cannot be time-multiplexed by the pool-sizing bin-packer: their
  /// instance is pinned for at least the next charging unit.
  bool on_slot = false;
};

struct LookaheadResult {
  /// Q_task in projected dispatch order (tasks already on slots first, by
  /// projected completion; then the projected ready queue).
  std::vector<UpcomingTask> upcoming;
  /// Restart cost per instance: max sunk occupancy (seconds) among tasks
  /// projected to be running on it at the start of the next interval.
  /// Instances absent from the map have no running tasks (cost 0).
  std::unordered_map<sim::InstanceId, double> restart_cost;
  /// Tasks projected to complete within the interval.
  std::uint32_t projected_completions = 0;
  /// Queue-tail entries omitted by the adaptive horizon cap (see
  /// LookaheadCacheOptions::adaptive_horizon). Always 0 from
  /// simulate_interval and from the cache with the cap off; when non-zero,
  /// `upcoming` is a prefix whose Algorithm-3 pool size already saturates
  /// the binding instance ceiling, so the steering decision is unchanged.
  std::uint32_t truncated_tasks = 0;
};

/// Projects execution from snapshot.now to snapshot.now + lag with the
/// current resource allotment (ready non-draining instances, plus
/// provisioning instances from when they boot; draining instances are
/// excluded and their tasks requeued). FIFO dispatch, mirroring the
/// framework master. The policy controller's predicted assignment may drift
/// from the true schedule; §III-D argues (and §IV-E confirms) the effect is
/// minor.
///
/// `state`, when non-null and ready, supplies the incomplete-predecessor
/// counts maintained incrementally across ticks (see RunState), replacing
/// the O(V + E) per-call seeding scan with an O(V) copy. Null keeps the
/// self-contained from-scratch derivation (tests, one-shot callers).
LookaheadResult simulate_interval(const dag::Workflow& workflow,
                                  const sim::MonitorSnapshot& snapshot,
                                  const predict::Estimator& predictor,
                                  const sim::CloudConfig& config,
                                  const RunState* state = nullptr);

}  // namespace wire::core
