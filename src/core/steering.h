// The resource-steering policy: paper Algorithms 2 and 3.
//
// Algorithm 3 sizes the worker pool by greedily bin-packing the upcoming
// load's predicted remaining occupancy times into instance slots, counting an
// instance only once its slots are filled for at least one full charging
// unit. Algorithm 2 grows or shrinks the current pool toward that size,
// releasing an instance only when its charging unit expires before the next
// interval (r_j <= t) and the sunk cost of restarting its tasks is below the
// configurable threshold (0.2u by default).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/lookahead.h"
#include "core/plan_scratch.h"
#include "sim/config.h"
#include "sim/monitor.h"
#include "sim/scaling_policy.h"

namespace wire::core {

/// The one implementation of Algorithm 3's greedy packer, consumed one
/// occupancy at a time. `resize_pool` drives it over a whole vector; the
/// lookahead skeleton drives the identical object online — both for the
/// adaptive horizon cap's stopping rule and to stamp the projected wavefront
/// with a steering-ready planned pool size during Q_task emission. One
/// implementation is what makes the stamped and from-scratch plan paths
/// bit-equal by construction: the packing arithmetic cannot drift between
/// two hand-synchronized copies.
class Alg3Packer {
 public:
  /// `instance_mem_mb` > 0 turns on memory-aware packing: the open virtual
  /// instance additionally fills up when its booked reservations exceed the
  /// capacity, forcing the same retire/advance step a full slot set does —
  /// the packer waits for earlier occupancies to retire before the
  /// over-capacity entry can co-reside, exactly as the dispatcher's
  /// admission would. 0 (the default) is bit-identical to the pre-memory
  /// packer for every add().
  Alg3Packer(double charging_unit, std::uint32_t slots_per_instance,
             double leftover_fraction = 0.2, double instance_mem_mb = 0.0)
      : charging_unit_(charging_unit),
        slots_(slots_per_instance),
        leftover_fraction_(leftover_fraction),
        mem_cap_(instance_mem_mb) {
    slot_used_.reserve(slots_);
    if (mem_cap_ > 0.0) slot_mem_.reserve(slots_);
  }

  /// Main-loop instance count after the occupancies consumed so far. A lower
  /// bound on the final count (the packer is online: its state after i
  /// entries is independent of later ones, and the leftover rule only ever
  /// adds one) — the adaptive horizon cap's stopping rule.
  std::uint32_t count() const { return p_; }

  void add(double occupancy, double mem_mb = 0.0) {
    slot_used_.push_back(occupancy);
    if (mem_cap_ > 0.0) {
      slot_mem_.push_back(mem_mb);
      mem_used_ += mem_mb;
    }
    // The `> 1` guard keeps a single over-capacity entry (possible only if
    // the caller's reservations are not capacity-clamped) from spinning the
    // retire loop: alone on the instance is the best packing available.
    while (slot_used_.size() == slots_ ||
           (mem_cap_ > 0.0 && slot_used_.size() > 1 &&
            mem_used_ > mem_cap_ + 1e-9)) {
      const double t_min =
          *std::min_element(slot_used_.begin(), slot_used_.end());
      t_used_ += t_min;
      if (t_used_ >= charging_unit_) {
        ++p_;
        t_used_ = 0.0;
        slot_used_.clear();
        if (mem_cap_ > 0.0) {
          slot_mem_.clear();
          mem_used_ = 0.0;
        }
      } else {
        // Retire the slots that finish at t_min; advance the others in
        // place (stable compaction — same values, same order, no per-step
        // allocation). Retired slots release their reservations.
        std::size_t w = 0;
        for (std::size_t r = 0; r < slot_used_.size(); ++r) {
          if (slot_used_[r] != t_min) {
            slot_used_[w] = slot_used_[r] - t_min;
            if (mem_cap_ > 0.0) slot_mem_[w] = slot_mem_[r];
            ++w;
          } else if (mem_cap_ > 0.0) {
            mem_used_ -= slot_mem_[r];
          }
        }
        slot_used_.resize(w);
        if (mem_cap_ > 0.0) slot_mem_.resize(w);
      }
    }
  }

  /// Algorithm 3's line-28 epilogue: an extra instance for a residual load
  /// exceeding `leftover_fraction` of the charging unit (or when none was
  /// planned at all). Returns the final planned pool size; the packer state
  /// is not consumed (finish() is pure).
  std::uint32_t finish() const {
    const double leftover_max =
        slot_used_.empty()
            ? 0.0
            : *std::max_element(slot_used_.begin(), slot_used_.end());
    std::uint32_t p = p_;
    if (p == 0 || leftover_max > leftover_fraction_ * charging_unit_) {
      ++p;
    }
    return p;
  }

 private:
  double charging_unit_;
  std::size_t slots_;
  double leftover_fraction_;
  /// Instance memory capacity, MB; 0 = memory-unaware packing.
  double mem_cap_;
  std::vector<double> slot_used_;
  /// Parallel reservations of the open slots (memory-aware only).
  std::vector<double> slot_mem_;
  double mem_used_ = 0.0;
  double t_used_ = 0.0;
  std::uint32_t p_ = 0;
};

/// Algorithm 3: resizing the worker pool. `upcoming` is Q_task's predicted
/// minimum remaining occupancy times in poll order; `charging_unit` is u;
/// `slots_per_instance` is l; `leftover_fraction` is the line-28 threshold
/// (an extra instance is planned when the residual load exceeds this fraction
/// of u). Returns the planned pool size p (>= 1 whenever `upcoming` is
/// non-empty; 0 only for an empty load).
std::uint32_t resize_pool(const std::vector<double>& upcoming,
                          double charging_unit,
                          std::uint32_t slots_per_instance,
                          double leftover_fraction = 0.2);

/// Memory-aware Algorithm 3: `mem_mb` carries the projected reservation of
/// each entry, parallel to `upcoming`, and `instance_mem_mb` the per-instance
/// capacity. With capacity 0 this is exactly the memory-unaware overload.
std::uint32_t resize_pool(const std::vector<double>& upcoming,
                          const std::vector<double>& mem_mb,
                          double charging_unit,
                          std::uint32_t slots_per_instance,
                          double leftover_fraction, double instance_mem_mb);

/// Algorithm 2: forms the grow/release command toward the planned size,
/// clamped to MonitorSnapshot::pool_cap when an external ceiling is imposed
/// (multi-tenant arbiter share); the unclamped Algorithm-3 size is reported
/// through `planned_size` and PoolCommand::desired_pool.
/// Candidates for release are ready, non-draining instances whose charging
/// unit expires before the next interval (r_j <= lag) with restart cost
/// c_j <= leftover_fraction * u; victims are taken in ascending restart-cost
/// order ("selects the instances to terminate to minimize task restart
/// costs") and drained at their charge boundary.
///
/// Plan-phase incrementality: when `lookahead.plan_valid` is set (the
/// incremental lookahead stamped the wavefront on a quiet tick), the
/// Algorithm-3 size is consumed directly from `lookahead.planned_pool` —
/// packed inline during Q_task emission by the same Alg3Packer — instead of
/// rebuilding the clamped occupancy vector and re-packing it here. Unstamped
/// results (the from-scratch reference, every fallback classification,
/// hand-built fixtures) take the full rebuild path. Both paths are
/// bit-identical by construction; the differential chaos suite asserts it
/// at every control tick.
///
/// `scratch`, when non-null, lends reusable buffers for the occupancy
/// rebuild and the victim-candidate list (persistent controllers); null
/// keeps self-contained local buffers (tests, one-shot callers).
///
/// `hazard_per_hour` > 0 turns on crash-aware steering: the planned pool is
/// inflated by lambda*u / (1 - e^{-lambda*u}) — the reciprocal of the
/// expected fraction of a charging unit an instance delivers before an
/// exponential crash at rate lambda — so expected delivered capacity matches
/// the packed demand on a crashy cloud. 0 (the default) is bit-identical to
/// hazard-blind steering.
sim::PoolCommand steer(const LookaheadResult& lookahead,
                       const sim::MonitorSnapshot& snapshot,
                       const sim::CloudConfig& config,
                       std::uint32_t* planned_size = nullptr,
                       bool reclaim_draining = false,
                       PlanScratch* scratch = nullptr,
                       double hazard_per_hour = 0.0);

/// Charging units that newly start in (now, now + horizon] for a row whose
/// next unit begins `first_start_delta` seconds from now, recharging every
/// `charging_unit` seconds thereafter. The shared primitive of the burn
/// projection: policies::BudgetPolicy and planned_burn_units() below must
/// count recharges identically or budget enforcement drifts from the
/// projection the controller reports.
inline double units_starting_within(double first_start_delta, double horizon,
                                    double charging_unit) {
  if (first_start_delta > horizon) return 0.0;
  return 1.0 + std::floor((horizon - first_start_delta) / charging_unit);
}

/// Projected billing burn of holding the pool at `target_pool` for the next
/// `horizon` seconds: charging units that newly *start* in (now, now +
/// horizon], given the snapshot's live rows. Ready rows recharge on their own
/// clocks (time_to_next_charge); provisioning rows and the boots needed to
/// reach the target contribute their first unit even when it starts beyond
/// the horizon — a requested instance commits at least one unit the moment
/// it comes up, so the projection treats that money as already spoken for.
/// When the target is below the live count, surplus rows are projected away
/// in the shrink order budget enforcement uses (boots latest-ready-first,
/// then ready rows soonest-recharge-first) so the projection matches the
/// command a budget-capped policy would actually issue. Draining rows expire
/// at their boundary and burn nothing; revoking rows are projected like
/// ready ones (the provider may bill recharges until the revocation lands —
/// over-counting them only makes the projection conservative).
double planned_burn_units(const sim::MonitorSnapshot& snapshot,
                          const sim::CloudConfig& config,
                          std::uint32_t target_pool, double horizon);

}  // namespace wire::core
