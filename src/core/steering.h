// The resource-steering policy: paper Algorithms 2 and 3.
//
// Algorithm 3 sizes the worker pool by greedily bin-packing the upcoming
// load's predicted remaining occupancy times into instance slots, counting an
// instance only once its slots are filled for at least one full charging
// unit. Algorithm 2 grows or shrinks the current pool toward that size,
// releasing an instance only when its charging unit expires before the next
// interval (r_j <= t) and the sunk cost of restarting its tasks is below the
// configurable threshold (0.2u by default).
#pragma once

#include <cstdint>
#include <vector>

#include "core/lookahead.h"
#include "sim/config.h"
#include "sim/monitor.h"
#include "sim/scaling_policy.h"

namespace wire::core {

/// Algorithm 3: resizing the worker pool. `upcoming` is Q_task's predicted
/// minimum remaining occupancy times in poll order; `charging_unit` is u;
/// `slots_per_instance` is l; `leftover_fraction` is the line-28 threshold
/// (an extra instance is planned when the residual load exceeds this fraction
/// of u). Returns the planned pool size p (>= 1 whenever `upcoming` is
/// non-empty; 0 only for an empty load).
std::uint32_t resize_pool(const std::vector<double>& upcoming,
                          double charging_unit,
                          std::uint32_t slots_per_instance,
                          double leftover_fraction = 0.2);

/// Algorithm 2: forms the grow/release command toward the planned size,
/// clamped to MonitorSnapshot::pool_cap when an external ceiling is imposed
/// (multi-tenant arbiter share); the unclamped Algorithm-3 size is reported
/// through `planned_size` and PoolCommand::desired_pool.
/// Candidates for release are ready, non-draining instances whose charging
/// unit expires before the next interval (r_j <= lag) with restart cost
/// c_j <= leftover_fraction * u; victims are taken in ascending restart-cost
/// order ("selects the instances to terminate to minimize task restart
/// costs") and drained at their charge boundary.
sim::PoolCommand steer(const LookaheadResult& lookahead,
                       const sim::MonitorSnapshot& snapshot,
                       const sim::CloudConfig& config,
                       std::uint32_t* planned_size = nullptr,
                       bool reclaim_draining = false);

}  // namespace wire::core
