// Quickstart: build a workflow, run it under WIRE on the simulated cloud,
// and compare against static full-site provisioning.
//
//   $ ./examples/quickstart
//
// Walks through the three core API layers:
//   1. wire::workload — instantiate a paper workload (TPCH-1 Small),
//   2. wire::core::WireController — the MAPE autoscaler,
//   3. wire::sim::simulate — the ground-truth cloud run.
#include <cstdio>

#include "core/controller.h"
#include "dag/analysis.h"
#include "exp/settings.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "workload/generators.h"
#include "workload/profiles.h"

int main() {
  using namespace wire;

  // 1. A workload: the paper's TPCH-1 Small run (62 tasks, 4 stages).
  const workload::WorkflowProfile profile =
      workload::tpch1_profile(workload::Scale::Small);
  const dag::Workflow wf = workload::make_workflow(profile, /*seed=*/7);

  const dag::WorkflowSummary summary = dag::summarize_workflow(wf);
  std::printf("workflow       : %s\n", wf.name().c_str());
  std::printf("tasks / stages : %u / %u\n", summary.task_count,
              summary.stage_count);
  std::printf("max width      : %u tasks in parallel\n", dag::max_width(wf));
  std::printf("aggregate work : %.2f hours\n", summary.aggregate_exec_hours);

  // 2. The simulated ExoGENI site (§IV-B): 12 instances max, 4 slots each,
  //    3-minute provisioning lag, 15-minute charging unit.
  const sim::CloudConfig cloud = exp::paper_cloud(/*charging_unit=*/900.0);

  // 3a. Run under WIRE.
  core::WireController wire_policy;
  sim::RunOptions options;
  options.seed = 1;
  options.initial_instances = 1;
  const sim::RunResult wire_run =
      sim::simulate(wf, wire_policy, cloud, options);

  // 3b. Run under static full-site provisioning (12 instances).
  policies::StaticPolicy full_site(12, "full-site");
  options.initial_instances = 12;
  const sim::RunResult static_run =
      sim::simulate(wf, full_site, cloud, options);

  std::printf("\n%-22s %12s %14s %12s %8s\n", "policy", "makespan(s)",
              "cost(units)", "utilization", "peak");
  for (const sim::RunResult* r : {&wire_run, &static_run}) {
    std::printf("%-22s %12.1f %14.1f %11.1f%% %8u\n", r->policy_name.c_str(),
                r->makespan, r->cost_units, 100.0 * r->utilization,
                r->peak_instances);
  }
  std::printf(
      "\nWIRE uses %.2fx fewer charging units at %.2fx the makespan.\n",
      static_run.cost_units / wire_run.cost_units,
      wire_run.makespan / static_run.makespan);
  return 0;
}
