// Custom policy: extending the library with your own autoscaler.
//
//   $ ./examples/custom_policy
//
// Shows the two extension points a downstream user has:
//   1. Implement sim::ScalingPolicy directly (full control, here a simple
//      hysteresis autoscaler), and
//   2. Compose the WIRE building blocks (TaskPredictor + lookahead +
//      Algorithm 3) with a custom steering rule.
// Both are compared against stock WIRE on a random layered DAG.
#include <algorithm>
#include <cstdio>

#include "core/controller.h"
#include "core/lookahead.h"
#include "core/steering.h"
#include "exp/settings.h"
#include "predict/task_predictor.h"
#include "sim/driver.h"
#include "workload/generators.h"

namespace {

using namespace wire;

/// Extension point 1: a from-scratch policy. Grows by one instance when the
/// ready queue is non-empty, releases idle instances at charge boundaries.
/// No prediction, no DAG knowledge — a deliberately simple strawman.
class HysteresisPolicy final : public sim::ScalingPolicy {
 public:
  std::string name() const override { return "hysteresis"; }

  void on_run_start(const dag::Workflow&, const sim::CloudConfig& config)
      override {
    config_ = config;
  }

  sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override {
    sim::PoolCommand cmd;
    if (!snapshot.ready_queue.empty()) {
      cmd.grow = 1;
      return cmd;
    }
    for (const sim::InstanceObservation& inst : snapshot.instances) {
      if (!inst.provisioning && !inst.draining &&
          inst.running_tasks.empty() &&
          inst.time_to_next_charge <= config_.lag_seconds &&
          snapshot.instances.size() > 1) {
        cmd.releases.push_back(sim::Release{inst.id, true});
      }
    }
    return cmd;
  }

 private:
  sim::CloudConfig config_;
};

/// Extension point 2: reuse WIRE's predictor and lookahead, but steer with a
/// custom rule — here a "turbo" variant that doubles Algorithm 3's plan
/// (trading cost for speed), illustrating the paper's remark that "it is
/// possible to modulate the aggressiveness of the heuristic".
class TurboWire final : public sim::ScalingPolicy {
 public:
  std::string name() const override { return "turbo-wire"; }

  void on_run_start(const dag::Workflow& workflow,
                    const sim::CloudConfig& config) override {
    workflow_ = &workflow;
    config_ = config;
    predictor_ = std::make_unique<predict::TaskPredictor>(workflow);
  }

  sim::PoolCommand plan(const sim::MonitorSnapshot& snapshot) override {
    predictor_->observe(snapshot);
    const core::LookaheadResult lookahead =
        core::simulate_interval(*workflow_, snapshot, *predictor_, config_);

    std::vector<double> occupancy;
    for (const core::UpcomingTask& t : lookahead.upcoming) {
      occupancy.push_back(t.on_slot ? std::max(t.remaining_occupancy,
                                               config_.charging_unit_seconds)
                                    : t.remaining_occupancy);
    }
    const std::uint32_t planned =
        2 * core::resize_pool(occupancy, config_.charging_unit_seconds,
                              config_.slots_per_instance);

    std::uint32_t live = 0;
    for (const sim::InstanceObservation& inst : snapshot.instances) {
      if (!inst.draining) ++live;
    }
    sim::PoolCommand cmd;
    if (planned > live) cmd.grow = planned - live;
    return cmd;  // never shrinks: speed over cost
  }

 private:
  const dag::Workflow* workflow_ = nullptr;
  sim::CloudConfig config_;
  std::unique_ptr<predict::TaskPredictor> predictor_;
};

void run(sim::ScalingPolicy& policy, const dag::Workflow& wf) {
  sim::RunOptions options;
  options.seed = 3;
  options.initial_instances = 1;
  const sim::RunResult r =
      sim::simulate(wf, policy, exp::paper_cloud(900.0), options);
  std::printf("%-12s makespan %7.0f s  cost %5.1f units  util %5.1f%%  "
              "peak %2u\n",
              r.policy_name.c_str(), r.makespan, r.cost_units,
              100.0 * r.utilization, r.peak_instances);
}

}  // namespace

int main() {
  workload::RandomDagOptions dag_options;
  dag_options.min_layers = 4;
  dag_options.max_layers = 6;
  dag_options.min_width = 8;
  dag_options.max_width = 40;
  dag_options.mean_exec_seconds = 60.0;
  const dag::Workflow wf = workload::random_layered(dag_options, 42);
  std::printf("random layered DAG: %zu tasks, %zu stages\n\n",
              wf.task_count(), wf.stage_count());

  HysteresisPolicy hysteresis;
  TurboWire turbo;
  core::WireController stock;
  run(hysteresis, wf);
  run(stock, wf);
  run(turbo, wf);
  std::printf(
      "\nturbo-wire buys speed with extra charging units; hysteresis lags a\n"
      "full provisioning cycle behind every width change. Stock WIRE sits\n"
      "between them by design.\n");
  return 0;
}
