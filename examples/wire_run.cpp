// wire_run — command-line runner for one workflow under one policy.
//
//   $ ./examples/wire_run --workflow tpch1-s --policy wire --unit 900
//   $ ./examples/wire_run --dag my.wire-dag --policy pure-reactive
//         --unit 60 --lag 120 --seed 9 --reps 5
//         --gantt gantt.csv --timeline pool.csv --summary runs.csv
//
// Workflows: genome-s|genome-l|tpch1-s|tpch1-l|tpch6-s|tpch6-l|
//            pagerank-s|pagerank-l, or any DAG file written by
//            dag::write_workflow (--dag).
// Policies:  wire | wire-oracle | full-site | pure-reactive |
//            reactive-conserving | static-<N>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/controller.h"
#include "dag/dax.h"
#include "dag/serialize.h"
#include "exp/settings.h"
#include "metrics/export.h"
#include "policies/baselines.h"
#include "sim/driver.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/generators.h"
#include "workload/profiles.h"

namespace {

using namespace wire;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workflow NAME | --dag FILE | --dax FILE] [--policy P] "
      "[--unit SECS]\n"
      "          [--lag SECS] [--slots N] [--max-instances N] [--seed N]\n"
      "          [--reps N] [--gantt FILE] [--timeline FILE] "
      "[--summary FILE] [--mape FILE]\n",
      argv0);
  std::exit(2);
}

std::optional<workload::WorkflowProfile> named_profile(
    const std::string& name) {
  using workload::Scale;
  static const std::map<std::string,
                        workload::WorkflowProfile (*)(Scale)>
      families = {
          {"genome", workload::epigenomics_profile},
          {"tpch1", workload::tpch1_profile},
          {"tpch6", workload::tpch6_profile},
          {"pagerank", workload::pagerank_profile},
      };
  const auto dash = name.rfind('-');
  if (dash == std::string::npos) return std::nullopt;
  const auto it = families.find(name.substr(0, dash));
  if (it == families.end()) return std::nullopt;
  const std::string scale = name.substr(dash + 1);
  if (scale == "s") return it->second(Scale::Small);
  if (scale == "l") return it->second(Scale::Large);
  return std::nullopt;
}

std::unique_ptr<sim::ScalingPolicy> named_policy(const std::string& name) {
  if (name == "wire") return std::make_unique<core::WireController>();
  if (name == "wire-oracle") {
    core::WireOptions options;
    options.oracle_estimator = true;
    return std::make_unique<core::WireController>(options);
  }
  if (name == "full-site") {
    return std::make_unique<policies::StaticPolicy>(12, "full-site");
  }
  if (name == "pure-reactive") {
    return std::make_unique<policies::PureReactivePolicy>();
  }
  if (name == "reactive-conserving") {
    return std::make_unique<policies::ReactiveConservingPolicy>();
  }
  if (name.rfind("static-", 0) == 0) {
    const int n = std::atoi(name.c_str() + 7);
    if (n >= 1) {
      return std::make_unique<policies::StaticPolicy>(
          static_cast<std::uint32_t>(n));
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workflow_name = "tpch1-s";
  std::string dag_file;
  std::string dax_file;
  std::string policy_name = "wire";
  std::string gantt_path, timeline_path, summary_path, mape_path;
  double unit = 900.0;
  double lag = 180.0;
  std::uint32_t slots = 4;
  std::uint32_t max_instances = 12;
  std::uint64_t seed = 1;
  std::uint32_t reps = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--workflow") workflow_name = next();
    else if (arg == "--dag") dag_file = next();
    else if (arg == "--dax") dax_file = next();
    else if (arg == "--policy") policy_name = next();
    else if (arg == "--unit") unit = std::atof(next());
    else if (arg == "--lag") lag = std::atof(next());
    else if (arg == "--slots") slots = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--max-instances") max_instances = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--seed") seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--reps") reps = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--gantt") gantt_path = next();
    else if (arg == "--timeline") timeline_path = next();
    else if (arg == "--summary") summary_path = next();
    else if (arg == "--mape") mape_path = next();
    else usage(argv[0]);
  }
  if (unit <= 0.0 || lag <= 0.0 || slots == 0 || reps == 0) usage(argv[0]);

  // Workflow.
  std::unique_ptr<dag::Workflow> wf;
  if (!dax_file.empty()) {
    std::ifstream in(dax_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", dax_file.c_str());
      return 1;
    }
    wf = std::make_unique<dag::Workflow>(dag::read_dax(in, dax_file));
  } else if (!dag_file.empty()) {
    std::ifstream in(dag_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", dag_file.c_str());
      return 1;
    }
    wf = std::make_unique<dag::Workflow>(dag::read_workflow(in));
  } else {
    const auto profile = named_profile(workflow_name);
    if (!profile) {
      std::fprintf(stderr, "unknown workflow '%s'\n", workflow_name.c_str());
      usage(argv[0]);
    }
    wf = std::make_unique<dag::Workflow>(workload::make_workflow(*profile, 7));
  }

  // Cloud.
  sim::CloudConfig config = exp::paper_cloud(unit);
  config.lag_seconds = lag;
  config.slots_per_instance = slots;
  config.max_instances = max_instances;

  std::printf("workflow %s: %zu tasks / %zu stages; policy %s; u=%.0fs "
              "lag=%.0fs slots=%u cap=%u\n\n",
              wf->name().c_str(), wf->task_count(), wf->stage_count(),
              policy_name.c_str(), unit, lag, slots, max_instances);
  std::printf("%4s %12s %12s %12s %6s %9s\n", "rep", "makespan(s)",
              "cost(units)", "utilization", "peak", "restarts");

  for (std::uint32_t rep = 0; rep < reps; ++rep) {
    auto policy = named_policy(policy_name);
    if (!policy) {
      std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
      usage(argv[0]);
    }
    // MAPE decision trace (wire policies only, first repetition).
    std::unique_ptr<util::CsvWriter> mape_csv;
    if (rep == 0 && !mape_path.empty()) {
      if (auto* wire_policy =
              dynamic_cast<core::WireController*>(policy.get())) {
        mape_csv = std::make_unique<util::CsvWriter>(mape_path);
        mape_csv->write_row({"time", "upcoming_tasks",
                             "upcoming_load_seconds", "planned_pool", "grow",
                             "releases"});
        wire_policy->set_trace_listener(
            [&mape_csv](const core::MapeTrace& t) {
              mape_csv->write_row({util::fmt(t.now, 1),
                                   std::to_string(t.upcoming_tasks),
                                   util::fmt(t.upcoming_load_seconds, 1),
                                   std::to_string(t.planned_pool),
                                   std::to_string(t.grow),
                                   std::to_string(t.releases)});
            });
      } else {
        std::fprintf(stderr,
                     "--mape requires a wire policy; ignoring for '%s'\n",
                     policy_name.c_str());
      }
    }
    sim::RunOptions options;
    options.seed = util::derive_seed(seed, rep);
    options.initial_instances =
        policy_name == "full-site" ? max_instances
        : policy_name.rfind("static-", 0) == 0
            ? static_cast<std::uint32_t>(std::atoi(policy_name.c_str() + 7))
            : 1;
    options.record_pool_timeline = !timeline_path.empty();
    const sim::RunResult r = sim::simulate(*wf, *policy, config, options);
    std::printf("%4u %12.1f %12.1f %11.1f%% %6u %9u\n", rep, r.makespan,
                r.cost_units, 100.0 * r.utilization, r.peak_instances,
                r.task_restarts);

    if (rep == 0 && !gantt_path.empty()) {
      metrics::write_gantt_csv(gantt_path, *wf, r);
      std::printf("  gantt -> %s\n", gantt_path.c_str());
    }
    if (rep == 0 && !timeline_path.empty()) {
      metrics::write_timeline_csv(timeline_path, r);
      std::printf("  timeline -> %s\n", timeline_path.c_str());
    }
    if (!summary_path.empty()) {
      metrics::write_summary_csv(summary_path, r, /*append=*/true);
    }
    if (mape_csv) {
      std::printf("  mape trace -> %s\n", mape_path.c_str());
    }
  }
  if (!summary_path.empty()) {
    std::printf("\nsummaries appended to %s\n", summary_path.c_str());
  }
  return 0;
}
