// Policy shootout: the §IV-C comparison on a workload of your choice.
//
//   $ ./examples/policy_shootout [genome|tpch1|tpch6|pagerank] [small|large]
//
// Runs all four resource-management settings (full-site, pure-reactive,
// reactive-conserving, wire) across the four paper charging units and prints
// the Figure 5/6 style summary: charging units consumed and execution time
// relative to the best setting. A coda reruns WIRE under a shrinking spend
// ceiling (policies::BudgetPolicy, hard cap) to show how the schedule trades
// makespan for cost as the budget tightens.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/settings.h"
#include "policies/budget.h"
#include "sim/driver.h"
#include "util/table.h"
#include "workload/generators.h"
#include "workload/profiles.h"

int main(int argc, char** argv) {
  using namespace wire;

  const std::string which = argc > 1 ? argv[1] : "tpch1";
  const workload::Scale scale =
      (argc > 2 && std::strcmp(argv[2], "large") == 0)
          ? workload::Scale::Large
          : workload::Scale::Small;

  workload::WorkflowProfile profile;
  if (which == "genome") {
    profile = workload::epigenomics_profile(scale);
  } else if (which == "tpch6") {
    profile = workload::tpch6_profile(scale);
  } else if (which == "pagerank") {
    profile = workload::pagerank_profile(scale);
  } else {
    profile = workload::tpch1_profile(scale);
  }

  exp::MatrixOptions options;
  options.repetitions = 3;
  const auto cells = exp::run_matrix({profile}, options);

  // Find the best mean makespan for the relative-time normalization.
  double best = 1e300;
  for (const exp::CellResult& cell : cells) {
    best = std::min(best, cell.stats.makespan_seconds.mean());
  }

  std::printf("=== %s: %zu policies x %zu charging units, %u runs each ===\n\n",
              profile.name.c_str(), options.policies.size(),
              options.charging_units.size(), options.repetitions);

  util::TextTable cost, time;
  cost.set_header({"cost (units)", "1 min", "15 min", "30 min", "60 min"});
  time.set_header({"rel. time", "1 min", "15 min", "30 min", "60 min"});
  std::size_t idx = 0;
  for (exp::PolicyKind policy : options.policies) {
    std::vector<std::string> cost_row{exp::policy_label(policy)};
    std::vector<std::string> time_row{exp::policy_label(policy)};
    for (std::size_t u = 0; u < options.charging_units.size(); ++u) {
      const exp::CellResult& cell = cells[idx++];
      cost_row.push_back(util::fmt_mean_std(cell.stats.cost_units.mean(),
                                            cell.stats.cost_units.stddev(),
                                            1));
      time_row.push_back(
          util::fmt(cell.stats.makespan_seconds.mean() / best, 2) + "x");
    }
    cost.add_row(std::move(cost_row));
    time.add_row(std::move(time_row));
  }
  std::printf("%s\n%s", cost.render().c_str(), time.render().c_str());
  std::printf(
      "\nReading guide: full-site is the speed bound (12 instances, idle\n"
      "most of the time); pure-reactive chases the instantaneous load and\n"
      "pays recharge penalties; reactive-conserving releases only at charge\n"
      "boundaries; wire additionally predicts the upcoming load from the\n"
      "DAG, so it grows before the width arrives and shrinks before waste\n"
      "accumulates.\n");

  // Budget coda: WIRE on the 1-minute unit (the finest-grained billing, so
  // the cap actually bites), unconstrained first to probe the natural cost,
  // then hard-capped at 100% / 80% / 60% of it. The "off" row is the zero
  // sentinel — it must reproduce the unconstrained run exactly.
  const sim::CloudConfig site = exp::paper_cloud(60.0);
  const dag::Workflow wf = workload::make_workflow(profile, /*seed=*/1);
  sim::RunOptions run_options;
  run_options.seed = 1;
  const auto run_with_budget = [&](double units) {
    policies::BudgetOptions budget;
    budget.budget_units = units;
    policies::BudgetPolicy policy(exp::make_policy(exp::PolicyKind::Wire),
                                  budget);
    sim::RunResult r = sim::simulate(wf, policy, site, run_options);
    return std::pair<sim::RunResult, bool>(std::move(r), policy.exhausted());
  };
  const auto [probe, probe_exhausted] = run_with_budget(0.0);
  util::TextTable budget_table;
  budget_table.set_header(
      {"budget", "units", "cost", "makespan (s)", "exhausted"});
  for (double scale : {0.0, 1.0, 0.8, 0.6}) {
    const double units =
        scale == 0.0 ? 0.0 : std::ceil(probe.cost_units * scale);
    const auto [r, exhausted] = run_with_budget(units);
    budget_table.add_row(
        {scale == 0.0 ? std::string("off") : util::fmt(scale, 1) + "x",
         scale == 0.0 ? std::string("-") : util::fmt(units, 0),
         util::fmt(r.cost_units, 1), util::fmt(r.makespan, 0),
         exhausted ? "yes" : "no"});
  }
  std::printf("\n=== wire under a hard spend cap (1 min unit) ===\n\n%s",
              budget_table.render().c_str());
  return 0;
}
