// Multi-tenant quickstart: a Poisson stream of workflow jobs sharing one
// simulated cloud site, partitioned by the site arbiter, each job autoscaled
// by its own WIRE controller. Prints the per-job outcome table and compares
// the three arbiter strategies on the same stream.
#include <cstdio>

#include "ensemble/arbiter.h"
#include "ensemble/arrival.h"
#include "ensemble/driver.h"
#include "ensemble/report.h"
#include "exp/settings.h"
#include "workload/profiles.h"

int main() {
  using namespace wire;

  // 1. The workflow catalogue jobs are drawn from: three Table-I profiles.
  std::vector<workload::WorkflowProfile> profiles = {
      workload::tpch1_profile(workload::Scale::Small),
      workload::tpch6_profile(workload::Scale::Small),
      workload::pagerank_profile(workload::Scale::Small),
  };

  // 2. A deterministic Poisson stream: 12 jobs, one every ~20 minutes.
  ensemble::PoissonArrivalConfig stream;
  stream.mean_interarrival_seconds = 1200.0;
  stream.job_count = 12;
  stream.seed = 42;
  const ensemble::ArrivalProcess arrivals =
      ensemble::ArrivalProcess::poisson(stream, profiles.size());

  // 3. One shared §IV-B site: 12 instances, 4 slots each, 15-minute units.
  const sim::CloudConfig site = exp::paper_cloud(900.0);

  // 4. Run the same stream under each arbiter strategy; every job gets its
  //    own WIRE controller, capped by its arbiter share.
  for (ensemble::ArbiterStrategy strategy : ensemble::all_strategies()) {
    ensemble::EnsembleOptions options;
    options.strategy = strategy;
    options.site_cap = site.max_instances;

    ensemble::EnsembleDriver driver(
        profiles, arrivals, exp::policy_factory(exp::PolicyKind::Wire), site,
        options);
    const ensemble::EnsembleReport report = driver.run();
    std::printf("%s\n", report.render().c_str());
  }
  return 0;
}
