// Epigenomics campaign: the paper's flagship scientific workflow end to end.
//
//   $ ./examples/epigenomics_campaign [small|large]
//
// Builds the 8-stage USC Epigenome pipeline (fastqSplit -> filterContams ->
// sol2sanger -> fast2bfq -> map -> mapMerge -> maqIndex -> pileup), prints
// its structure, persists it in the DAX-like text format, then runs it under
// WIRE across all four paper charging units with a pool-size timeline so you
// can watch the autoscaler chase the workflow's width.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/controller.h"
#include "dag/analysis.h"
#include "dag/serialize.h"
#include "exp/settings.h"
#include "sim/driver.h"
#include "workload/generators.h"
#include "workload/profiles.h"

int main(int argc, char** argv) {
  using namespace wire;

  const bool large = argc > 1 && std::strcmp(argv[1], "large") == 0;
  const workload::WorkflowProfile profile = workload::epigenomics_profile(
      large ? workload::Scale::Large : workload::Scale::Small);
  const dag::Workflow wf = workload::make_workflow(profile, /*seed=*/7);

  // --- Structure -------------------------------------------------------
  std::printf("=== %s ===\n", wf.name().c_str());
  const auto summaries = dag::summarize_stages(wf);
  std::printf("%-16s %7s %12s %10s\n", "stage", "tasks", "mean exec(s)",
              "class");
  for (const dag::StageSummary& s : summaries) {
    std::printf("%-16s %7u %12.2f %10s\n", s.name.c_str(), s.task_count,
                s.mean_ref_exec_seconds,
                dag::stage_class_name(
                    dag::classify_stage(s.mean_ref_exec_seconds)));
  }
  const auto widths = dag::width_profile(wf);
  std::printf("parallelism profile (tasks per DAG level):");
  for (std::uint32_t w : widths) std::printf(" %u", w);
  std::printf("\ncritical path: %.1f s; aggregate work: %.2f h\n\n",
              dag::critical_path_seconds(wf),
              wf.aggregate_ref_exec_seconds() / 3600.0);

  // --- Persist the DAG (DAX-like text format) ---------------------------
  const std::string dax_path = "epigenomics.wire-dag";
  {
    std::ofstream out(dax_path);
    dag::write_workflow(out, wf);
  }
  std::printf("workflow serialized to ./%s\n\n", dax_path.c_str());

  // --- Run under WIRE across the paper's charging units ------------------
  std::printf("%10s %12s %12s %12s %8s %9s\n", "unit", "makespan(s)",
              "cost(units)", "utilization", "peak", "restarts");
  for (double unit : exp::paper_charging_units()) {
    core::WireController controller;
    sim::RunOptions options;
    options.seed = 1;
    options.initial_instances = 1;
    options.record_pool_timeline = true;
    const sim::RunResult r =
        sim::simulate(wf, controller, exp::paper_cloud(unit), options);
    std::printf("%7.0f min %12.1f %12.1f %11.1f%% %8u %9u\n", unit / 60.0,
                r.makespan, r.cost_units, 100.0 * r.utilization,
                r.peak_instances, r.task_restarts);

    if (unit == 60.0) {
      std::printf("\npool-size timeline at u = 1 min (one row per MAPE "
                  "tick):\n  time(s)  pool  running  ready\n");
      for (std::size_t i = 0; i < r.pool_timeline.size();
           i += std::max<std::size_t>(1, r.pool_timeline.size() / 20)) {
        const sim::PoolSample& s = r.pool_timeline[i];
        std::printf("  %7.0f  %4u  %7u  %5u\n", s.time, s.live_instances,
                    s.running_tasks, s.ready_tasks);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nNote how larger charging units push WIRE toward smaller pools:\n"
      "releasing an instance mid-unit wastes paid time, so elastic agility\n"
      "is inherently limited when u is long relative to task runtimes\n"
      "(paper §IV-A, Figure 3).\n");
  return 0;
}
